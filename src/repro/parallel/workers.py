"""Per-partition worker functions for the real-mmap parallel joins.

Each function handles one partition's share of one pass, operating purely
on memory-mapped segment files, and is a module-level callable so it can be
dispatched to a :mod:`multiprocessing` pool (CPython's GIL rules out thread
parallelism for this workload, so — like the paper's Rproc/Sproc design —
parallelism is process-level, one worker per partition).

Workers communicate only through the store's files and their pickled return
values; there is no shared mutable state, and every (target, contributor)
temporary file is written by exactly one worker, so passes are race-free by
construction.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.pointer import PointerMap
from repro.core.records import JoinedPair, RObject, join_pair
from repro.joins.grace import order_preserving_bucket, refining_chain
from repro.storage.relation import RRelationFile
from repro.storage.store import Store

PairList = List[JoinedPair]


def _store(root: str, disks: int) -> Store:
    return Store(root, disks)


def _pmap(s_objects: int, disks: int) -> PointerMap:
    return PointerMap(s_objects=s_objects, partitions=disks)


def _phase_partner(i: int, t: int, disks: int) -> int:
    return (i + t) % disks


# ------------------------------------------------------------ nested loops

def nested_loops_pass0(
    args: Tuple[str, int, int, int, int]
) -> PairList:
    """Scan R_i: join local references, spill the rest to the RP_i_j."""
    root, disks, i, s_objects, record_bytes = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    pairs: PairList = []
    with store.open_r(i) as r_rel, store.open_s(i) as s_rel:
        spill = {
            j: RRelationFile.create(
                store.path(i, f"RP{i}_{j}"), max(1, len(r_rel)), record_bytes
            )
            for j in range(disks)
            if j != i
        }
        try:
            for obj in r_rel:
                target, offset = pmap.locate(obj.sptr)
                if target == i:
                    pairs.append(join_pair(obj, s_rel.dereference(offset)))
                else:
                    spill[target].append(obj)
        finally:
            for rel in spill.values():
                rel.close()
    return pairs


def nested_loops_pass1(
    args: Tuple[str, int, int, int]
) -> PairList:
    """Phases t = 1..D-1: join RP_i,offset(i,t) against that S partition."""
    root, disks, i, s_objects = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    pairs: PairList = []
    for t in range(1, disks):
        j = _phase_partner(i, t, disks)
        with RRelationFile.open(store.path(i, f"RP{i}_{j}")) as spill, \
                store.open_s(j) as s_rel:
            for obj in spill:
                pairs.append(join_pair(obj, s_rel.dereference(pmap.offset_of(obj.sptr))))
    return pairs


# --------------------------------------------------------------- sort-merge

def sort_merge_partition(
    args: Tuple[str, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: write the RS_j_from_i files."""
    root, disks, i, s_objects, record_bytes = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    with store.open_r(i) as r_rel:
        outputs = {
            j: RRelationFile.create(
                store.path(j, f"RS{j}_from{i}"), max(1, len(r_rel)), record_bytes
            )
            for j in range(disks)
        }
        moved = 0
        try:
            for obj in r_rel:
                outputs[pmap.partition_of(obj.sptr)].append(obj)
                moved += 1
        finally:
            for rel in outputs.values():
                rel.close()
    return moved


def sort_merge_join(
    args: Tuple[str, int, int, int, int, int]
) -> PairList:
    """Sort RS_i into runs, merge the runs, join against sequential S_i."""
    root, disks, i, s_objects, record_bytes, irun = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    irun = max(1, irun)

    # Gather this partition's inbound objects and cut them into sorted runs
    # stored back on disk (the external-sort structure of the paper).
    run_paths: List[Path] = []
    buffer: List[RObject] = []
    run_id = 0

    def flush_run() -> None:
        nonlocal run_id
        if not buffer:
            return
        buffer.sort(key=lambda obj: obj.sptr)
        path = store.path(i, f"RUN{i}_{run_id}")
        rel = RRelationFile.create(path, len(buffer), record_bytes)
        try:
            for obj in buffer:
                rel.append(obj)
        finally:
            rel.close()
        run_paths.append(path)
        run_id += 1
        buffer.clear()

    for contributor in range(disks):
        with RRelationFile.open(store.path(i, f"RS{i}_from{contributor}")) as rel:
            for obj in rel:
                buffer.append(obj)
                if len(buffer) >= irun:
                    flush_run()
    flush_run()

    # Merge the run streams lazily and join against a sequential S_i scan.
    pairs: PairList = []
    streams = [_run_stream(path) for path in run_paths]
    with store.open_s(i) as s_rel:
        for obj in heapq.merge(*streams, key=lambda o: o.sptr):
            pairs.append(join_pair(obj, s_rel.dereference(pmap.offset_of(obj.sptr))))
    return pairs


def _run_stream(path: Path):
    rel = RRelationFile.open(path)
    try:
        yield from rel
    finally:
        rel.close()


# -------------------------------------------------------------------- grace

def grace_partition(
    args: Tuple[str, int, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: hash into BS_j_k_from_i files."""
    root, disks, i, s_objects, record_bytes, buckets = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    with store.open_r(i) as r_rel:
        outputs: Dict[Tuple[int, int], RRelationFile] = {}
        moved = 0
        try:
            for obj in r_rel:
                target, offset = pmap.locate(obj.sptr)
                part_size = pmap.partition_size(target)
                bucket = order_preserving_bucket(offset, part_size, buckets)
                key = (target, bucket)
                if key not in outputs:
                    outputs[key] = RRelationFile.create(
                        store.path(target, f"BS{target}_{bucket}_from{i}"),
                        max(1, len(r_rel)),
                        record_bytes,
                    )
                outputs[key].append(obj)
                moved += 1
        finally:
            for rel in outputs.values():
                rel.close()
    return moved


def grace_probe(
    args: Tuple[str, int, int, int, int, int]
) -> PairList:
    """Probe passes for one partition: bucket table, ordered S access."""
    root, disks, i, s_objects, buckets, tsize = args
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    part_size = pmap.partition_size(i)
    pairs: PairList = []
    with store.open_s(i) as s_rel:
        for bucket in range(buckets):
            table: List[List[RObject]] = [[] for _ in range(tsize)]
            for contributor in range(disks):
                path = store.path(i, f"BS{i}_{bucket}_from{contributor}")
                if not path.exists():
                    continue
                with RRelationFile.open(path) as rel:
                    for obj in rel:
                        offset = pmap.offset_of(obj.sptr)
                        chain = refining_chain(offset, part_size, buckets, tsize)
                        table[chain].append(obj)
            for chain in table:
                for obj in chain:
                    offset = pmap.offset_of(obj.sptr)
                    pairs.append(join_pair(obj, s_rel.dereference(offset)))
    return pairs
