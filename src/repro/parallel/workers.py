"""Stage kernels for the real-mmap parallel joins.

Each kernel is one partition's share of one :class:`~repro.parallel.
engine.stages.Stage`, operating purely on memory-mapped segment files.
Kernels are *thin*: every cross-cutting concern — fault injection, memory
metering, metrics registries and sidecars, error classification — lives
once in the engine task wrapper (:func:`repro.parallel.engine.task.
run_task`); a kernel only moves records.  :func:`~repro.parallel.engine.
task.register_kernel` records each function under its name so the
executor can dispatch it by name through a :mod:`multiprocessing` pool
(CPython's GIL rules out thread parallelism for this workload, so — like
the paper's Rproc/Sproc design — parallelism is process-level, one worker
per partition).

All record movement is block-at-a-time: kernels consume decoded batches
(`iter_object_batches`), resolve pointers with the batched
:meth:`PointerMap.locate_many` / :meth:`offset_many`, dereference S through
:meth:`SRelationFile.dereference_many`, and append spills/runs/buckets via
``append_many`` — no per-record ``bytes()`` copies or struct calls.

Join output never crosses a process boundary.  Every pair-producing
kernel streams its pairs into its own mapped ``PAIRS`` segment (one
writer per file, so passes stay race-free by construction) and returns
only a :class:`~repro.parallel.engine.task.PairResult`
``(count, checksum, path)``; the parent maps the files back in and
materializes pairs lazily, if at all.

Every kernel is failure-safe: output segments are published only by the
atomic rename in their ``close()``, and every exception path *aborts*
(discards) the partially written outputs and releases the mmap/file
handles before re-raising — so a pass that dies mid-stream leaks nothing
and a retried attempt re-creates its outputs from scratch (``overwrite=
True`` on every create makes that legal).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.governor.watchdog import active_meter

from repro.core.pointer import PointerMap
from repro.core.records import RObject
from repro.joins.grace import refining_chain
from repro.parallel.engine.partition import resolve_partitioner
from repro.parallel.engine.task import (
    BATCH_RECORDS,
    CHECKSUM_MOD,
    OBS_MARKER,
    RUN_SHARD_STRIDE,
    PairResult,
    PairSink,
    StageOutput,
    bucket_spill_name,
    bucket_spill_paths,
    metrics_sidecar,
    nl_spill_name,
    pairs_name,
    rebatch,
    register_kernel,
    resolve_kernel_mode,
    rs_name,
    run_lower_bound,
    run_name,
    run_paths,
    run_stream,
    shard_of,
)
from repro.storage.relation import BucketedRFile, RRelationFile
from repro.storage.segment import MappedSegment
from repro.storage.store import Store

__all__ = [
    "BATCH_RECORDS",
    "CHECKSUM_MOD",
    "OBS_MARKER",
    "PairResult",
    "StageOutput",
    "grace_partition",
    "grace_probe",
    "hybrid_hash_partition",
    "metrics_sidecar",
    "nested_loops_pass0",
    "nested_loops_pass1",
    "pairs_name",
    "sort_merge_merge_join",
    "sort_merge_partition",
    "sort_merge_runs",
]


def _vectorized(root: str):
    """The numpy kernel module when this store runs in vector mode.

    Each registered kernel dispatches through this first: the mode
    resolves from the store root (marker file → env → default), so one
    kernel name serves both implementations and the executor, tests, and
    retried passes never need to know which one ran.  Returns ``None``
    in scalar mode; the scalar body below is the fallback.
    """
    if resolve_kernel_mode(root) == "vector":
        from repro.parallel import vectorized

        return vectorized
    return None


def _store(root: str, disks: int) -> Store:
    return Store(root, disks)


def _pmap(s_objects: int, disks: int) -> PointerMap:
    return PointerMap(s_objects=s_objects, partitions=disks)


def _phase_partner(i: int, t: int, disks: int) -> int:
    return (i + t) % disks


# ------------------------------------------------------------ nested loops

@register_kernel
def nested_loops_pass0(
    args: Tuple[str, int, int, int, int]
) -> PairResult:
    """Scan R_i: join local references, spill the rest to the RP_i_j.

    The trailing optional arg throttles the batch size — the governor's
    nested-loops degradation knob.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.nested_loops_pass0(args)
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel, store.open_s(i) as s_rel:
        s_bytes = s_rel.segment.layout.record_bytes
        sink = PairSink(store.path(i, pairs_name("p0", i)), len(r_rel))
        spill = {
            j: RRelationFile.create(
                store.path(i, nl_spill_name(i, j)), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
            if j != i
        }
        try:
            for batch in r_rel.iter_object_batches(batch_records):
                charged = len(batch) * record_bytes
                meter.charge(charged, "nested-loops R batch")
                located = pmap.locate_many([obj[1] for obj in batch])
                local_r: List[RObject] = []
                local_offsets: List[int] = []
                remote: Dict[int, List[RObject]] = {}
                for obj, (target, offset) in zip(batch, located):
                    if target == i:
                        local_r.append(obj)
                        local_offsets.append(offset)
                    else:
                        remote.setdefault(target, []).append(obj)
                meter.charge(
                    len(local_offsets) * s_bytes, "dereferenced S batch"
                )
                charged += len(local_offsets) * s_bytes
                sink.emit_joined(local_r, s_rel.dereference_many(local_offsets))
                for target, objects in remote.items():
                    spill[target].append_many(objects)
                meter.release(charged)
            for rel in spill.values():
                rel.close()
            return sink.close()
        except BaseException:
            for rel in spill.values():
                rel.abort()
            sink.abort()
            raise


@register_kernel
def nested_loops_pass1(
    args: Tuple[str, int, int, int]
) -> PairResult:
    """Phases t = 1..D-1: join RP_i,offset(i,t) against that S partition.

    Rebalance axis ``records``: a trailing :class:`Shard` restricts the
    kernel to the record range ``[lo, hi)`` of the phase spill files
    concatenated in phase order — every shard walks the same file list
    with the same global indexing, so the shard union is exactly the
    unsharded scan.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.nested_loops_pass1(args)
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects = core[:4]
    batch_records = core[4] if len(core) > 4 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    partners = [_phase_partner(i, t, disks) for t in range(1, disks)]
    spill_paths = [store.path(i, nl_spill_name(i, j)) for j in partners]
    counts = [MappedSegment.record_count(path) for path in spill_paths]
    total = sum(counts)
    lo, hi = (0, total) if shard is None else (shard.lo, min(shard.hi, total))
    sink = PairSink(store.path(i, pairs_name("p1", i, shard)), hi - lo)
    base = 0
    try:
        for j, path, count in zip(partners, spill_paths, counts):
            start = max(0, lo - base)
            stop = min(count, hi - base)
            base += count
            if shard is not None and start >= stop:
                continue
            with RRelationFile.open(path) as spill, store.open_s(j) as s_rel:
                r_bytes = spill.segment.layout.record_bytes
                s_bytes = s_rel.segment.layout.record_bytes
                for batch in spill.iter_object_batches(
                    batch_records, start, stop
                ):
                    charged = len(batch) * (r_bytes + s_bytes)
                    meter.charge(charged, "nested-loops spill batch")
                    offsets = pmap.offset_many([obj[1] for obj in batch])
                    sink.emit_joined(batch, s_rel.dereference_many(offsets))
                    meter.release(charged)
        return sink.close()
    except BaseException:
        sink.abort()
        raise


# --------------------------------------------------------------- sort-merge

@register_kernel
def sort_merge_partition(
    args: Tuple[str, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: write the RS_j_from_i files."""
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.sort_merge_partition(args)
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel:
        outputs = {
            j: RRelationFile.create(
                store.path(j, rs_name(j, i)), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
        }
        moved = 0
        try:
            for batch in r_rel.iter_object_batches(batch_records):
                meter.charge(
                    len(batch) * record_bytes, "sort-merge partition batch"
                )
                located = pmap.locate_many([obj[1] for obj in batch])
                buckets: Dict[int, List[RObject]] = {}
                for obj, (target, _offset) in zip(batch, located):
                    buckets.setdefault(target, []).append(obj)
                for target, objects in buckets.items():
                    outputs[target].append_many(objects)
                    moved += len(objects)
                meter.release(len(batch) * record_bytes)
            for rel in outputs.values():
                rel.close()
        except BaseException:
            for rel in outputs.values():
                rel.abort()
            raise
    return moved


@register_kernel
def sort_merge_runs(
    args: Tuple[str, int, int, int, int]
) -> int:
    """Cut one partition's inbound RS files into sorted runs on disk.

    The meter's charge always equals len(buffer) * record_bytes: extends
    charge, flushes release exactly what they wrote — so a shrunken
    ``irun`` (the governor's sort-merge knob) directly lowers the
    high-water mark at the cost of more runs for the merge stage.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.sort_merge_runs(args)
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, record_bytes, irun = core[:5]
    batch_records = core[5] if len(core) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    meter = active_meter()
    irun = max(1, irun)
    # Stale runs are poison: the merge stage discovers runs by glob, so
    # leftovers from a previous attempt or plan (including torn-write
    # garbage at a run's final path) must be gone before this attempt
    # cuts its own.  Sharded cutters must NOT sweep — they would race
    # each other's fresh runs; the executor pre-cleans the partition
    # once before dispatching the shard tasks.
    if shard is None:
        for stale in run_paths(store, i):
            stale.unlink(missing_ok=True)
    # Shards namespace their run ids so every shard writes disjoint run
    # files; numeric sort over the combined ids reproduces shard order
    # then local order, i.e. the concatenated inbound order.
    run_base = 0 if shard is None else shard.index * RUN_SHARD_STRIDE
    buffer: List[RObject] = []
    run_id = 0
    inbound = 0

    def flush_run() -> None:
        nonlocal run_id
        if not buffer:
            return
        buffer.sort(key=lambda obj: obj.sptr)
        rel = RRelationFile.create(
            store.path(i, run_name(i, run_base + run_id)), len(buffer),
            record_bytes, overwrite=True,
        )
        try:
            rel.append_many(buffer)
        except BaseException:
            rel.abort()
            raise
        rel.close()
        run_id += 1
        meter.release(len(buffer) * record_bytes)
        buffer.clear()

    lo = 0 if shard is None else shard.lo
    hi = None if shard is None else shard.hi
    base = 0
    for contributor in range(disks):
        path = store.path(i, rs_name(i, contributor))
        count = MappedSegment.record_count(path)
        start = max(0, lo - base)
        stop = count if hi is None else min(count, hi - base)
        base += count
        if shard is not None and start >= stop:
            continue
        with RRelationFile.open(path) as rel:
            for batch in rel.iter_object_batches(batch_records, start, stop):
                inbound += len(batch)
                meter.charge(len(batch) * record_bytes, "sort-run buffer")
                buffer.extend(batch)
                while len(buffer) >= irun:
                    tail = buffer[irun:]
                    del buffer[irun:]
                    flush_run()
                    buffer.extend(tail)
    flush_run()
    return inbound


def _clipped_run_stream(path, klo: int, khi: int, batch_records: int):
    """Stream a sorted run's records with ``sptr`` in ``[klo, khi)``.

    Binary-seeks to the range start and stops at the first record past
    it, so a key-range shard's cost is proportional to its own range —
    never to the prefix owned by lower shards.
    """
    rel = RRelationFile.open(path)
    try:
        start = run_lower_bound(rel, klo)
        for batch in rel.iter_object_batches(batch_records, start):
            for obj in batch:
                if obj.sptr >= khi:
                    return
                yield obj
    finally:
        rel.close()


@register_kernel
def sort_merge_merge_join(
    args: Tuple[str, int, int, int, int]
) -> PairResult:
    """Merge one partition's sorted runs and join against sequential S_i.

    A single run needs no heap: its batches are already in sptr order, so
    the per-record merge machinery (generator hops + key calls) is
    skipped entirely — the common case whenever a partition's inbound fits
    one initial run.

    Rebalance axis ``keys``: a trailing :class:`Shard` carries an sptr
    key range ``[lo, hi)``.  Each shard merges *all* runs clipped to its
    range; the ranges tile the key space, so the shard union is the full
    merge (runs are sorted, so clipping preserves merge order).
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.sort_merge_merge_join(args)
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects, record_bytes = core[:5]
    batch_records = core[5] if len(core) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    paths = run_paths(store, i)
    capacity = sum(MappedSegment.record_count(path) for path in paths)
    sink = PairSink(store.path(i, pairs_name("sm", i, shard)), capacity)
    try:
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            batch_cost = record_bytes + s_bytes
            if shard is not None and paths:
                streams = [
                    _clipped_run_stream(
                        path, shard.lo, shard.hi, batch_records
                    )
                    for path in paths
                ]
                try:
                    merged = (
                        streams[0]
                        if len(streams) == 1
                        else heapq.merge(*streams, key=lambda o: o.sptr)
                    )
                    for batch in rebatch(merged, batch_records):
                        meter.charge(len(batch) * batch_cost, "merge batch")
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        sink.emit_joined(batch, s_rel.dereference_many(offsets))
                        meter.release(len(batch) * batch_cost)
                finally:
                    for stream in streams:
                        stream.close()
            elif len(paths) == 1:
                with RRelationFile.open(paths[0]) as rel:
                    for batch in rel.iter_object_batches(batch_records):
                        meter.charge(len(batch) * batch_cost, "merge batch")
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        sink.emit_joined(batch, s_rel.dereference_many(offsets))
                        meter.release(len(batch) * batch_cost)
            elif paths:
                streams = [run_stream(path) for path in paths]
                try:
                    merged = heapq.merge(*streams, key=lambda o: o.sptr)
                    for batch in rebatch(merged, batch_records):
                        meter.charge(len(batch) * batch_cost, "merge batch")
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        sink.emit_joined(batch, s_rel.dereference_many(offsets))
                        meter.release(len(batch) * batch_cost)
                finally:
                    for stream in streams:
                        stream.close()
        return sink.close()
    except BaseException:
        sink.abort()
        raise


# ------------------------------------------------------- grace / hybrid hash

def _spill_bucket_groups(
    store: Store,
    grouped: Dict[int, Dict[int, List[RObject]]],
    buckets: int,
    record_bytes: int,
    contributor: int,
    chunk: int | None,
) -> int:
    """Write accumulated bucket groups to one spill file per target.

    Shared by the grace and hybrid-hash partition kernels; the files are
    named by :func:`~repro.parallel.engine.task.bucket_spill_name`, which
    is also how the probe kernel finds them — producers and consumers
    agree on artifact names through that one scheme.
    """
    flushed = 0
    for target, bucket_groups in grouped.items():
        capacity = sum(len(objs) for objs in bucket_groups.values())
        spill = BucketedRFile.create(
            store.path(target, bucket_spill_name(target, contributor, chunk)),
            capacity, buckets, record_bytes, overwrite=True,
        )
        try:
            for bucket in sorted(bucket_groups):
                spill.append_bucket(bucket, bucket_groups[bucket])
                flushed += len(bucket_groups[bucket])
        except BaseException:
            spill.abort()
            raise
        spill.close()
    grouped.clear()
    return flushed


@register_kernel
def grace_partition(
    args: Tuple[str, int, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: hash into the BS_j_from_i files.

    All of one contributor's spill for one target lands in a single
    bucket-grouped :class:`BucketedRFile` (file creation dominates this
    pass when every (target, bucket) pair gets its own file).  By default
    the bucket groups are accumulated in memory over the whole scan — the
    probe side, where grace's memory bound actually lives, stays
    bucket-at-a-time.  Under a memory budget the governor passes a
    ``spill_threshold``: whenever that many objects are retained the
    groups are flushed to *chunked* spill files (``BS<j>_from<i>_c<n>``),
    bounding the partition pass at threshold + one batch.  The probe side
    reads base and chunk files alike, so the join output is identical.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.grace_partition(args)
    root, disks, i, s_objects, record_bytes, buckets = args[:6]
    spill_threshold = args[6] if len(args) > 6 else None
    batch_records = args[7] if len(args) > 7 else BATCH_RECORDS
    partitioner = args[8] if len(args) > 8 else "hash"
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_sizes = [pmap.partition_size(j) for j in range(disks)]
    part = resolve_partitioner(root, partitioner, part_sizes, buckets)
    grouped: Dict[int, Dict[int, List[RObject]]] = {}
    moved = 0
    retained = 0
    chunk_id = 0

    def flush_groups(chunk: int | None) -> int:
        nonlocal retained
        flushed = _spill_bucket_groups(
            store, grouped, buckets, record_bytes, i, chunk
        )
        meter.release(retained * record_bytes)
        retained = 0
        return flushed

    with store.open_r(i) as r_rel:
        for batch in r_rel.iter_object_batches(batch_records):
            meter.charge(len(batch) * record_bytes, "grace bucket groups")
            retained += len(batch)
            located = pmap.locate_many([obj[1] for obj in batch])
            for obj, (target, offset) in zip(batch, located):
                bucket = part.bucket_of(target, offset, obj[0])
                grouped.setdefault(target, {}).setdefault(bucket, []).append(obj)
            if spill_threshold is not None and retained >= spill_threshold:
                moved += flush_groups(chunk_id)
                chunk_id += 1
    if spill_threshold is None:
        moved += flush_groups(None)
    elif grouped:
        moved += flush_groups(chunk_id)
    return moved


@register_kernel
def hybrid_hash_partition(
    args: Tuple[str, int, int, int, int, int, int, int]
) -> StageOutput:
    """Hybrid hash partitioning: join resident buckets on the fly.

    Like :func:`grace_partition`, but references hashing to the plan's
    *resident* buckets (``bucket < resident``) never touch a spill file —
    they are dereferenced against the target S partition and joined during
    the scan, exactly the r0-buckets-stay-home structure of the paper's
    hybrid hash (``joins/hybrid_hash.py``).  Non-resident buckets spill
    with the *full* bucket count, so the unchanged probe kernel reads
    them; the resident buckets are simply empty there.  With ``resident
    == 0`` this degenerates to grace partitioning — the governor's final
    memory rung.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.hybrid_hash_partition(args)
    root, disks, i, s_objects, record_bytes, buckets, resident = args[:7]
    spill_threshold = args[7] if len(args) > 7 else None
    batch_records = args[8] if len(args) > 8 else BATCH_RECORDS
    partitioner = args[9] if len(args) > 9 else "hash"
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_sizes = [pmap.partition_size(j) for j in range(disks)]
    part = resolve_partitioner(root, partitioner, part_sizes, buckets)
    grouped: Dict[int, Dict[int, List[RObject]]] = {}
    moved = 0
    retained = 0
    chunk_id = 0
    s_rels: Dict[int, object] = {}

    def open_s(target: int):
        if target not in s_rels:
            s_rels[target] = store.open_s(target)
        return s_rels[target]

    def flush_groups(chunk: int | None) -> int:
        nonlocal retained
        flushed = _spill_bucket_groups(
            store, grouped, buckets, record_bytes, i, chunk
        )
        meter.release(retained * record_bytes)
        retained = 0
        return flushed

    with store.open_r(i) as r_rel:
        sink = PairSink(store.path(i, pairs_name("hh", i)), len(r_rel))
        try:
            for batch in r_rel.iter_object_batches(batch_records):
                meter.charge(len(batch) * record_bytes, "hybrid bucket groups")
                located = pmap.locate_many([obj[1] for obj in batch])
                by_target: Dict[int, Tuple[List[RObject], List[int]]] = {}
                resident_count = 0
                for obj, (target, offset) in zip(batch, located):
                    bucket = part.bucket_of(target, offset, obj[0])
                    if bucket < resident:
                        objs, offsets = by_target.setdefault(
                            target, ([], [])
                        )
                        objs.append(obj)
                        offsets.append(offset)
                        resident_count += 1
                    else:
                        grouped.setdefault(target, {}).setdefault(
                            bucket, []
                        ).append(obj)
                        retained += 1
                for target, (objs, offsets) in by_target.items():
                    s_rel = open_s(target)
                    s_bytes = s_rel.segment.layout.record_bytes
                    charged = len(objs) * s_bytes
                    meter.charge(charged, "resident S batch")
                    sink.emit_joined(objs, s_rel.dereference_many(offsets))
                    meter.release(charged)
                meter.release(resident_count * record_bytes)
                if spill_threshold is not None and retained >= spill_threshold:
                    moved += flush_groups(chunk_id)
                    chunk_id += 1
            if spill_threshold is None:
                moved += flush_groups(None)
            elif grouped:
                moved += flush_groups(chunk_id)
            result = sink.close()
        except BaseException:
            sink.abort()
            raise
        finally:
            for rel in s_rels.values():
                rel.close()
    return StageOutput(moved, result)


@register_kernel
def grace_probe(
    args: Tuple[str, int, int, int, int, int]
) -> PairResult:
    """Probe passes for one partition: bucket table, ordered S access.

    Rebalance axis ``buckets``: a trailing :class:`Shard` restricts the
    probe to the contiguous bucket range ``[lo, hi)``.  Buckets are
    independent units of work, so the shard union probes exactly the
    unsharded bucket sequence.
    """
    vec = _vectorized(args[0])
    if vec is not None:
        return vec.grace_probe(args)
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects, buckets, tsize = core[:6]
    batch_records = core[6] if len(core) > 6 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_size = pmap.partition_size(i)
    bucket_lo = 0 if shard is None else shard.lo
    bucket_hi = buckets if shard is None else min(shard.hi, buckets)
    inbound: List[BucketedRFile] = []
    for contributor in range(disks):
        for path in bucket_spill_paths(store, i, contributor):
            inbound.append(BucketedRFile.open(path))
    capacity = sum(len(rel) for rel in inbound)
    sink = None
    try:
        sink = PairSink(store.path(i, pairs_name("probe", i, shard)), capacity)
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            for bucket in range(bucket_lo, bucket_hi):
                table: List[List[RObject]] = [[] for _ in range(tsize)]
                bucket_charged = 0
                for rel in inbound:
                    r_bytes = rel.segment.layout.record_bytes
                    for batch in rel.iter_bucket_batches(bucket, batch_records):
                        meter.charge(
                            len(batch) * r_bytes, "grace probe bucket"
                        )
                        bucket_charged += len(batch) * r_bytes
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        for obj, offset in zip(batch, offsets):
                            chain = refining_chain(
                                offset, part_size, buckets, tsize
                            )
                            table[chain].append(obj)
                # Emit in chain order but batched across chains: per-chain
                # emits average ~1 record, so chunking the whole bucket
                # keeps the dereference/append calls block-sized.  The
                # checksum and the multiset of pairs are order-independent,
                # so this matches the per-chain path exactly.
                ordered = [
                    obj for chain_objects in table for obj in chain_objects
                ]
                for chunk in rebatch(ordered, batch_records):
                    meter.charge(len(chunk) * s_bytes, "dereferenced S batch")
                    offsets = pmap.offset_many([obj[1] for obj in chunk])
                    sink.emit_joined(chunk, s_rel.dereference_many(offsets))
                    meter.release(len(chunk) * s_bytes)
                meter.release(bucket_charged)
        return sink.close()
    except BaseException:
        if sink is not None:
            sink.abort()
        raise
    finally:
        for rel in inbound:
            rel.close()
