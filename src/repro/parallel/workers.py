"""Per-partition worker functions for the real-mmap parallel joins.

Each function handles one partition's share of one pass, operating purely
on memory-mapped segment files, and is a module-level callable so it can be
dispatched to a :mod:`multiprocessing` pool (CPython's GIL rules out thread
parallelism for this workload, so — like the paper's Rproc/Sproc design —
parallelism is process-level, one worker per partition).

All record movement is block-at-a-time: workers consume decoded batches
(`iter_object_batches`), resolve pointers with the batched
:meth:`PointerMap.locate_many` / :meth:`offset_many`, dereference S through
:meth:`SRelationFile.dereference_many`, and append spills/runs/buckets via
``append_many`` — no per-record ``bytes()`` copies or struct calls.

Join output never crosses a process boundary.  Every pair-producing worker
streams its pairs into its own mapped ``PAIRS`` segment (one writer per
file, so passes stay race-free by construction) and returns only a
:class:`PairResult` ``(count, checksum, path)``; the parent maps the files
back in and materializes pairs lazily, if at all.

Metrics follow the same files-only protocol: when the runner has dropped
the :data:`OBS_MARKER` file into the store root, each worker activates a
process-local :class:`~repro.obs.MetricsRegistry` (the storage layer's
counters land there), stamps its own wall time, and snapshots the registry
to a small JSON sidecar next to the segments — so per-worker metrics reach
the parent without widening the pickled return values, and the marker file
reaches pool processes that were forked before the join began.

Every worker is failure-safe: output segments are published only by the
atomic rename in their ``close()``, and every exception path *aborts*
(discards) the partially written outputs and releases the mmap/file
handles before re-raising — so a pass that dies mid-stream leaks nothing
and a retried attempt re-creates its outputs from scratch (``overwrite=
True`` on every create makes that legal).  The
:func:`~repro.parallel.faults.maybe_inject` hook at task entry is where a
:class:`~repro.parallel.faults.FaultPlan` kills, hangs or tears a chosen
``(task, partition, attempt)`` deterministically.
"""

from __future__ import annotations

import functools
import heapq
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.governor.budget import load_budgets
from repro.governor.errors import ResourceExhausted, classify_os_error
from repro.governor.watchdog import (
    MemoryMeter,
    activate_meter,
    active_meter,
    deactivate_meter,
    rss_high_water_bytes,
)
from repro.obs.registry import MetricsRegistry, activate, active, deactivate
from repro.obs.spans import span

from repro.core.pointer import PointerMap
from repro.parallel.faults import maybe_inject
from repro.core.records import RObject
from repro.joins.grace import order_preserving_bucket, refining_chain
from repro.storage.relation import BucketedRFile, PairsFile, RRelationFile
from repro.storage.segment import MappedSegment
from repro.storage.store import Store

BATCH_RECORDS = 4096
CHECKSUM_MOD = 1 << 61

#: Presence of this file in the store root switches worker metrics on.
OBS_MARKER = "metrics.on"


def metrics_sidecar(root: str | Path, task: str, partition: int) -> Path:
    """Where one worker snapshots its registry for the parent to merge."""
    return Path(root) / f"metrics_{task}_{partition}.json"


def _instrumented(func: Callable) -> Callable:
    """Inject armed faults, meter memory, and collect one task's metrics.

    The wrapper is also the backend's *classification boundary*: any raw
    ``OSError``/``MemoryError`` that escapes a task — a real ``ENOSPC``
    out of an ``ftruncate``, an injected ``disk-full``, an allocator
    failure — leaves here as a classified
    :class:`~repro.governor.errors.ResourceExhausted` subtype (which
    pickles intact through the pool), so the runner can tell "this join
    needs a smaller plan" apart from "the code is broken".

    Uninstrumented dispatch (no marker, no budget file, no fault plan)
    costs three ``stat`` calls; every worker arg tuple starts
    ``(root, disks, partition, ...)``, which is all the wrapper needs.
    """
    task = func.__name__

    @functools.wraps(func)
    def wrapper(args):
        root, partition = args[0], args[2]
        try:
            return _governed_task(func, task, args, root, partition)
        except ResourceExhausted:
            raise
        except (MemoryError, OSError) as error:
            classified = classify_os_error(
                error, f"{task} partition {partition}"
            )
            if classified is not None:
                raise classified from error
            raise

    return wrapper


def _governed_task(func: Callable, task: str, args, root, partition):
    """Run one task under the armed budgets/metrics, if any.

    The fault hook fires first — before any registry or file handle is
    acquired — because a real crash would also strike before the task
    produced anything.
    """
    maybe_inject(root, task, partition)
    budgets = load_budgets(root)
    metrics_on = Path(root, OBS_MARKER).exists()
    if budgets is None and not metrics_on:
        return func(args)
    limit = budgets.worker_mem_budget_bytes if budgets is not None else None
    meter = activate_meter(MemoryMeter(limit))
    try:
        if not metrics_on:
            return func(args)
        registry = activate(MetricsRegistry())
        started = time.perf_counter()
        try:
            with span("task", task=task, worker=partition):
                result = func(args)
        finally:
            deactivate()
        wall_ms = (time.perf_counter() - started) * 1000.0
        labels = {"task": task, "worker": partition}
        registry.gauge("worker.wall_ms", wall_ms, **labels)
        registry.gauge(
            "worker.mem_high_water_bytes",
            float(meter.high_water_bytes), **labels,
        )
        registry.gauge(
            "worker.mapped_peak_bytes",
            float(meter.mapped_high_water_bytes), **labels,
        )
        rss = rss_high_water_bytes()
        if rss is not None:
            registry.gauge("worker.rss_max_bytes", float(rss), **labels)
        registry.count("worker.tasks", 1, task=task)
        metrics_sidecar(root, task, partition).write_text(
            json.dumps(registry.snapshot())
        )
        return result
    finally:
        deactivate_meter()


class PairResult(NamedTuple):
    """What a pair-producing worker sends back instead of the pairs."""

    count: int
    checksum: int
    path: str


class _PairSink:
    """Stream joined pairs into one mapped segment, checksumming as we go.

    The checksum is the simulator's :class:`PairCollector` mix — summing
    per-batch and reducing once is equivalent to the per-pair running mod.
    """

    def __init__(self, path: Path, capacity: int) -> None:
        self.path = path
        # overwrite=True: a retried pass legally replaces the outputs a
        # failed attempt published; the segment stays a .tmp sibling
        # until close() renames it into place.
        self._file = PairsFile.create(path, max(1, capacity), overwrite=True)
        self.count = 0
        self.checksum = 0

    def emit_joined(self, r_objects: List[RObject], s_objects: List) -> None:
        """Join matched R/S batches positionally and stream the pairs."""
        pairs = [
            (r[0], s[0], r[2], s[1])
            for r, s in zip(r_objects, s_objects)
        ]
        if not pairs:
            return
        self._file.append_many(pairs)
        active().count("worker.pairs", len(pairs))
        self.count += len(pairs)
        self.checksum = (
            self.checksum
            + sum(p[0] * 1_000_003 + p[1] * 7919 + p[3] for p in pairs)
        ) % CHECKSUM_MOD

    def close(self) -> PairResult:
        """Publish the segment (atomic rename) and report its totals."""
        self._file.close()
        return PairResult(self.count, self.checksum, str(self.path))

    def abort(self) -> None:
        """Discard the sink without publishing (idempotent failure path)."""
        self._file.abort()


def _store(root: str, disks: int) -> Store:
    return Store(root, disks)


def _pmap(s_objects: int, disks: int) -> PointerMap:
    return PointerMap(s_objects=s_objects, partitions=disks)


def _phase_partner(i: int, t: int, disks: int) -> int:
    return (i + t) % disks


def pairs_name(label: str, partition: int) -> str:
    """The PAIRS segment written by one worker of one pass."""
    return f"PAIRS_{label}_{partition}"


# ------------------------------------------------------------ nested loops

@_instrumented
def nested_loops_pass0(
    args: Tuple[str, int, int, int, int]
) -> PairResult:
    """Scan R_i: join local references, spill the rest to the RP_i_j.

    The trailing optional arg throttles the batch size — the governor's
    nested-loops degradation knob.
    """
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel, store.open_s(i) as s_rel:
        s_bytes = s_rel.segment.layout.record_bytes
        sink = _PairSink(store.path(i, pairs_name("p0", i)), len(r_rel))
        spill = {
            j: RRelationFile.create(
                store.path(i, f"RP{i}_{j}"), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
            if j != i
        }
        try:
            for batch in r_rel.iter_object_batches(batch_records):
                charged = len(batch) * record_bytes
                meter.charge(charged, "nested-loops R batch")
                located = pmap.locate_many([obj[1] for obj in batch])
                local_r: List[RObject] = []
                local_offsets: List[int] = []
                remote: Dict[int, List[RObject]] = {}
                for obj, (target, offset) in zip(batch, located):
                    if target == i:
                        local_r.append(obj)
                        local_offsets.append(offset)
                    else:
                        remote.setdefault(target, []).append(obj)
                meter.charge(
                    len(local_offsets) * s_bytes, "dereferenced S batch"
                )
                charged += len(local_offsets) * s_bytes
                sink.emit_joined(local_r, s_rel.dereference_many(local_offsets))
                for target, objects in remote.items():
                    spill[target].append_many(objects)
                meter.release(charged)
            for rel in spill.values():
                rel.close()
            return sink.close()
        except BaseException:
            for rel in spill.values():
                rel.abort()
            sink.abort()
            raise


@_instrumented
def nested_loops_pass1(
    args: Tuple[str, int, int, int]
) -> PairResult:
    """Phases t = 1..D-1: join RP_i,offset(i,t) against that S partition."""
    root, disks, i, s_objects = args[:4]
    batch_records = args[4] if len(args) > 4 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    spill_paths = [
        store.path(i, f"RP{i}_{_phase_partner(i, t, disks)}")
        for t in range(1, disks)
    ]
    capacity = sum(MappedSegment.record_count(path) for path in spill_paths)
    sink = _PairSink(store.path(i, pairs_name("p1", i)), capacity)
    try:
        for t in range(1, disks):
            j = _phase_partner(i, t, disks)
            with RRelationFile.open(store.path(i, f"RP{i}_{j}")) as spill, \
                    store.open_s(j) as s_rel:
                r_bytes = spill.segment.layout.record_bytes
                s_bytes = s_rel.segment.layout.record_bytes
                for batch in spill.iter_object_batches(batch_records):
                    charged = len(batch) * (r_bytes + s_bytes)
                    meter.charge(charged, "nested-loops spill batch")
                    offsets = pmap.offset_many([obj[1] for obj in batch])
                    sink.emit_joined(batch, s_rel.dereference_many(offsets))
                    meter.release(charged)
        return sink.close()
    except BaseException:
        sink.abort()
        raise


# --------------------------------------------------------------- sort-merge

@_instrumented
def sort_merge_partition(
    args: Tuple[str, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: write the RS_j_from_i files."""
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel:
        outputs = {
            j: RRelationFile.create(
                store.path(j, f"RS{j}_from{i}"), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
        }
        moved = 0
        try:
            for batch in r_rel.iter_object_batches(batch_records):
                meter.charge(
                    len(batch) * record_bytes, "sort-merge partition batch"
                )
                located = pmap.locate_many([obj[1] for obj in batch])
                buckets: Dict[int, List[RObject]] = {}
                for obj, (target, _offset) in zip(batch, located):
                    buckets.setdefault(target, []).append(obj)
                for target, objects in buckets.items():
                    outputs[target].append_many(objects)
                    moved += len(objects)
                meter.release(len(batch) * record_bytes)
            for rel in outputs.values():
                rel.close()
        except BaseException:
            for rel in outputs.values():
                rel.abort()
            raise
    return moved


@_instrumented
def sort_merge_join(
    args: Tuple[str, int, int, int, int, int]
) -> PairResult:
    """Sort RS_i into runs, merge the runs, join against sequential S_i."""
    root, disks, i, s_objects, record_bytes, irun = args[:6]
    batch_records = args[6] if len(args) > 6 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    irun = max(1, irun)

    # Gather this partition's inbound objects and cut them into sorted runs
    # stored back on disk (the external-sort structure of the paper).  The
    # meter's charge always equals len(buffer) * record_bytes: extends
    # charge, flushes release exactly what they wrote — so a shrunken
    # ``irun`` (the governor's sort-merge knob) directly lowers the
    # high-water mark at the cost of more runs to merge.
    run_paths: List[Path] = []
    buffer: List[RObject] = []
    run_id = 0
    inbound = 0

    def flush_run() -> None:
        nonlocal run_id
        if not buffer:
            return
        buffer.sort(key=lambda obj: obj.sptr)
        path = store.path(i, f"RUN{i}_{run_id}")
        rel = RRelationFile.create(
            path, len(buffer), record_bytes, overwrite=True
        )
        try:
            rel.append_many(buffer)
        except BaseException:
            rel.abort()
            raise
        rel.close()
        run_paths.append(path)
        run_id += 1
        meter.release(len(buffer) * record_bytes)
        buffer.clear()

    for contributor in range(disks):
        with RRelationFile.open(store.path(i, f"RS{i}_from{contributor}")) as rel:
            for batch in rel.iter_object_batches(batch_records):
                inbound += len(batch)
                meter.charge(len(batch) * record_bytes, "sort-run buffer")
                buffer.extend(batch)
                while len(buffer) >= irun:
                    tail = buffer[irun:]
                    del buffer[irun:]
                    flush_run()
                    buffer.extend(tail)
    flush_run()

    # Merge the run streams lazily and join against a sequential S_i scan,
    # re-batching the merged stream so dereferences stay block-at-a-time.
    # A single run needs no heap: its batches are already in sptr order,
    # so the per-record merge machinery (generator hops + key calls) is
    # skipped entirely — the common case whenever a partition's inbound
    # fits one initial run.
    sink = _PairSink(store.path(i, pairs_name("sm", i)), inbound)
    try:
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            batch_cost = record_bytes + s_bytes
            if len(run_paths) == 1:
                with RRelationFile.open(run_paths[0]) as rel:
                    for batch in rel.iter_object_batches(batch_records):
                        meter.charge(len(batch) * batch_cost, "merge batch")
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        sink.emit_joined(batch, s_rel.dereference_many(offsets))
                        meter.release(len(batch) * batch_cost)
            else:
                streams = [_run_stream(path) for path in run_paths]
                try:
                    merged = heapq.merge(*streams, key=lambda o: o.sptr)
                    for batch in _rebatch(merged, batch_records):
                        meter.charge(len(batch) * batch_cost, "merge batch")
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        sink.emit_joined(batch, s_rel.dereference_many(offsets))
                        meter.release(len(batch) * batch_cost)
                finally:
                    for stream in streams:
                        stream.close()
        return sink.close()
    except BaseException:
        sink.abort()
        raise


def _run_stream(path: Path):
    rel = RRelationFile.open(path)
    try:
        yield from rel.iter_objects(BATCH_RECORDS)
    finally:
        rel.close()


def _rebatch(iterable: Iterable, size: int):
    batch: List = []
    for item in iterable:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


# -------------------------------------------------------------------- grace

@_instrumented
def grace_partition(
    args: Tuple[str, int, int, int, int, int]
) -> int:
    """Passes 0 and 1 for one contributor: hash into the BS_j_from_i files.

    All of one contributor's spill for one target lands in a single
    bucket-grouped :class:`BucketedRFile` (file creation dominates this
    pass when every (target, bucket) pair gets its own file).  By default
    the bucket groups are accumulated in memory over the whole scan — the
    probe side, where grace's memory bound actually lives, stays
    bucket-at-a-time.  Under a memory budget the governor passes a
    ``spill_threshold``: whenever that many objects are retained the
    groups are flushed to *chunked* spill files (``BS<j>_from<i>_c<n>``),
    bounding the partition pass at threshold + one batch.  The probe side
    reads base and chunk files alike, so the join output is identical.
    """
    root, disks, i, s_objects, record_bytes, buckets = args[:6]
    spill_threshold = args[6] if len(args) > 6 else None
    batch_records = args[7] if len(args) > 7 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_sizes = [pmap.partition_size(j) for j in range(disks)]
    grouped: Dict[int, Dict[int, List[RObject]]] = {}
    moved = 0
    retained = 0
    chunk_id = 0

    def flush_groups(name_for_target) -> int:
        nonlocal retained
        flushed = 0
        for target, bucket_groups in grouped.items():
            capacity = sum(len(objs) for objs in bucket_groups.values())
            spill = BucketedRFile.create(
                store.path(target, name_for_target(target)),
                capacity, buckets, record_bytes, overwrite=True,
            )
            try:
                for bucket in sorted(bucket_groups):
                    spill.append_bucket(bucket, bucket_groups[bucket])
                    flushed += len(bucket_groups[bucket])
            except BaseException:
                spill.abort()
                raise
            spill.close()
        grouped.clear()
        meter.release(retained * record_bytes)
        retained = 0
        return flushed

    with store.open_r(i) as r_rel:
        for batch in r_rel.iter_object_batches(batch_records):
            meter.charge(len(batch) * record_bytes, "grace bucket groups")
            retained += len(batch)
            located = pmap.locate_many([obj[1] for obj in batch])
            for obj, (target, offset) in zip(batch, located):
                bucket = order_preserving_bucket(
                    offset, part_sizes[target], buckets
                )
                grouped.setdefault(target, {}).setdefault(bucket, []).append(obj)
            if spill_threshold is not None and retained >= spill_threshold:
                chunk = chunk_id
                moved += flush_groups(
                    lambda target: f"BS{target}_from{i}_c{chunk}"
                )
                chunk_id += 1
    if spill_threshold is None:
        moved += flush_groups(lambda target: f"BS{target}_from{i}")
    elif grouped:
        chunk = chunk_id
        moved += flush_groups(lambda target: f"BS{target}_from{i}_c{chunk}")
    return moved


@_instrumented
def grace_probe(
    args: Tuple[str, int, int, int, int, int]
) -> PairResult:
    """Probe passes for one partition: bucket table, ordered S access."""
    root, disks, i, s_objects, buckets, tsize = args[:6]
    batch_records = args[6] if len(args) > 6 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_size = pmap.partition_size(i)
    inbound: List[BucketedRFile] = []
    for contributor in range(disks):
        for path in _grace_spill_paths(store, i, contributor):
            inbound.append(BucketedRFile.open(path))
    capacity = sum(len(rel) for rel in inbound)
    sink: Optional[_PairSink] = None
    try:
        sink = _PairSink(store.path(i, pairs_name("probe", i)), capacity)
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            for bucket in range(buckets):
                table: List[List[RObject]] = [[] for _ in range(tsize)]
                bucket_charged = 0
                for rel in inbound:
                    r_bytes = rel.segment.layout.record_bytes
                    for batch in rel.iter_bucket_batches(bucket, batch_records):
                        meter.charge(
                            len(batch) * r_bytes, "grace probe bucket"
                        )
                        bucket_charged += len(batch) * r_bytes
                        offsets = pmap.offset_many([obj[1] for obj in batch])
                        for obj, offset in zip(batch, offsets):
                            chain = refining_chain(
                                offset, part_size, buckets, tsize
                            )
                            table[chain].append(obj)
                # Emit in chain order but batched across chains: per-chain
                # emits average ~1 record, so chunking the whole bucket
                # keeps the dereference/append calls block-sized.  The
                # checksum and the multiset of pairs are order-independent,
                # so this matches the per-chain path exactly.
                ordered = [
                    obj for chain_objects in table for obj in chain_objects
                ]
                for chunk in _rebatch(ordered, batch_records):
                    meter.charge(len(chunk) * s_bytes, "dereferenced S batch")
                    offsets = pmap.offset_many([obj[1] for obj in chunk])
                    sink.emit_joined(chunk, s_rel.dereference_many(offsets))
                    meter.release(len(chunk) * s_bytes)
                meter.release(bucket_charged)
        return sink.close()
    except BaseException:
        if sink is not None:
            sink.abort()
        raise
    finally:
        for rel in inbound:
            rel.close()


def _grace_spill_paths(store: Store, i: int, contributor: int) -> List[Path]:
    """One contributor's spill files for partition ``i``, chunks included.

    The unchunked base file and any ``_c<n>`` chunks (written when the
    partition pass ran under a spill threshold) are all valid inputs;
    chunks are ordered numerically so probe input order is deterministic.
    """
    paths: List[Path] = []
    base = store.path(i, f"BS{i}_from{contributor}")
    if base.exists():
        paths.append(base)
    prefix = f"BS{i}_from{contributor}_c"
    chunks = [
        path for path in store.disk_dir(i).glob(f"{prefix}*.seg")
        if path.name[len(prefix):-len(".seg")].isdigit()
    ]
    chunks.sort(key=lambda path: int(path.name[len(prefix):-len(".seg")]))
    paths.extend(chunks)
    return paths
