"""Vectorized stage-kernel bodies for the real-mmap parallel joins.

One numpy implementation per :mod:`repro.parallel.workers` kernel, with
identical signatures (the raw argument tuple) and bit-identical output:
same pair counts, same checksums, same segment bytes.  The scalar kernels
stay the semantic reference — every body here is a whole-array transcription
of its scalar twin, preserving

* **record order** everywhere it is observable: boolean-mask selection
  keeps encounter order, ``np.argsort(kind="stable")`` matches
  ``list.sort(key=...)``, and the chunked k-way merge reproduces
  ``heapq.merge`` stability (earlier run wins ties);
* **meter charges**: the same ``record_bytes``-denominated amounts at the
  same points, so the governor's predicted-vs-observed tolerance holds in
  either mode;
* **artifact layout**: spill/run/bucket files are created with the same
  names, capacities and record content, so a pass can crash in one mode
  and be retried in the other.

The kernels in :mod:`~repro.parallel.workers` dispatch here when the
store's kernel mode resolves to ``"vector"`` (see
:func:`repro.parallel.engine.task.resolve_kernel_mode`); nothing in this
module is registered directly.

The data movement idiom throughout: mapped batches decode to three
compact u64 column copies (:meth:`RecordLayout.decode_columns`), pointers
resolve via :meth:`PointerMap.locate_array`, S dereferences are one
fancy-indexed gather over a single dtype view
(:meth:`SRelationFile.dereference_columns`), and pair emission writes one
``(n, 4)`` u64 block per batch (:meth:`PairSink.emit_arrays`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

from repro.core.pointer import PointerMap
from repro.governor.watchdog import active_meter
from repro.obs.registry import active as _metrics
from repro.parallel.engine.partition import resolve_partitioner
from repro.parallel.engine.task import (
    BATCH_RECORDS,
    RUN_SHARD_STRIDE,
    PairResult,
    PairSink,
    StageOutput,
    bucket_spill_name,
    bucket_spill_paths,
    nl_spill_name,
    pairs_name,
    rs_name,
    run_lower_bound,
    run_name,
    run_paths,
    shard_of,
)
from repro.storage.relation import BucketedRFile, RRelationFile
from repro.storage.segment import MappedSegment
from repro.storage.store import Store

__all__ = [
    "HAVE_NUMPY",
    "grace_partition",
    "grace_probe",
    "hybrid_hash_partition",
    "nested_loops_pass0",
    "nested_loops_pass1",
    "sort_merge_merge_join",
    "sort_merge_partition",
    "sort_merge_runs",
]


def _store(root: str, disks: int) -> Store:
    return Store(root, disks)


def _pmap(s_objects: int, disks: int) -> PointerMap:
    return PointerMap(s_objects=s_objects, partitions=disks)


def _phase_partner(i: int, t: int, disks: int) -> int:
    return (i + t) % disks


def _targets_in_encounter_order(parts):
    """Distinct partition ids of ``parts``, ordered by first appearance.

    Matches the iteration order of the scalar kernels' ``dict.setdefault``
    grouping, which is observable wherever per-target work emits pairs.
    """
    uniq, first = np.unique(parts, return_index=True)
    return [int(t) for t in uniq[np.argsort(first, kind="stable")]]


# ------------------------------------------------------------ nested loops

def nested_loops_pass0(args: Tuple[str, int, int, int, int]) -> PairResult:
    """Scan R_i: join local references, spill the rest to the RP_i_j."""
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel, store.open_s(i) as s_rel:
        s_bytes = s_rel.segment.layout.record_bytes
        sink = PairSink(store.path(i, pairs_name("p0", i)), len(r_rel))
        spill = {
            j: RRelationFile.create(
                store.path(i, nl_spill_name(i, j)), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
            if j != i
        }
        try:
            for rid, sptr, payload in r_rel.iter_column_batches(batch_records):
                charged = len(rid) * record_bytes
                meter.charge(charged, "nested-loops R batch")
                parts, offs = pmap.locate_array(sptr)
                local = parts == i
                n_local = int(local.sum())
                meter.charge(n_local * s_bytes, "dereferenced S batch")
                charged += n_local * s_bytes
                if n_local:
                    sid, value = s_rel.dereference_columns(offs[local])
                    sink.emit_arrays(rid[local], sid, payload[local], value)
                if n_local < len(rid):
                    remote = ~local
                    for target in _targets_in_encounter_order(parts[remote]):
                        mask = remote & (parts == target)
                        spill[target].append_columns(
                            rid[mask], sptr[mask], payload[mask]
                        )
                meter.release(charged)
            for rel in spill.values():
                rel.close()
            return sink.close()
        except BaseException:
            for rel in spill.values():
                rel.abort()
            sink.abort()
            raise


def nested_loops_pass1(args: Tuple[str, int, int, int]) -> PairResult:
    """Phases t = 1..D-1: join RP_i,offset(i,t) against that S partition."""
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects = core[:4]
    batch_records = core[4] if len(core) > 4 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    partners = [_phase_partner(i, t, disks) for t in range(1, disks)]
    spill_paths = [store.path(i, nl_spill_name(i, j)) for j in partners]
    counts = [MappedSegment.record_count(path) for path in spill_paths]
    total = sum(counts)
    lo, hi = (0, total) if shard is None else (shard.lo, min(shard.hi, total))
    sink = PairSink(store.path(i, pairs_name("p1", i, shard)), hi - lo)
    base = 0
    try:
        for j, path, count in zip(partners, spill_paths, counts):
            start = max(0, lo - base)
            stop = min(count, hi - base)
            base += count
            if shard is not None and start >= stop:
                continue
            with RRelationFile.open(path) as spill, store.open_s(j) as s_rel:
                r_bytes = spill.segment.layout.record_bytes
                s_bytes = s_rel.segment.layout.record_bytes
                for rid, sptr, payload in spill.iter_column_batches(
                    batch_records, start, stop
                ):
                    charged = len(rid) * (r_bytes + s_bytes)
                    meter.charge(charged, "nested-loops spill batch")
                    sid, value = s_rel.dereference_columns(
                        pmap.offset_array(sptr)
                    )
                    sink.emit_arrays(rid, sid, payload, value)
                    meter.release(charged)
        return sink.close()
    except BaseException:
        sink.abort()
        raise


# --------------------------------------------------------------- sort-merge

def sort_merge_partition(args: Tuple[str, int, int, int, int]) -> int:
    """Passes 0 and 1 for one contributor: write the RS_j_from_i files."""
    root, disks, i, s_objects, record_bytes = args[:5]
    batch_records = args[5] if len(args) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    with store.open_r(i) as r_rel:
        outputs = {
            j: RRelationFile.create(
                store.path(j, rs_name(j, i)), max(1, len(r_rel)),
                record_bytes, overwrite=True,
            )
            for j in range(disks)
        }
        moved = 0
        try:
            for rid, sptr, payload in r_rel.iter_column_batches(batch_records):
                meter.charge(
                    len(rid) * record_bytes, "sort-merge partition batch"
                )
                parts, _offs = pmap.locate_array(sptr)
                for target in _targets_in_encounter_order(parts):
                    mask = parts == target
                    outputs[target].append_columns(
                        rid[mask], sptr[mask], payload[mask]
                    )
                    moved += int(mask.sum())
                meter.release(len(rid) * record_bytes)
            for rel in outputs.values():
                rel.close()
        except BaseException:
            for rel in outputs.values():
                rel.abort()
            raise
    return moved


class _ColumnBuffer:
    """FIFO of (rid, sptr, payload) column chunks with exact-size takes.

    The vector stand-in for the sort-run stage's ``List[RObject]`` buffer:
    chunks queue up as they arrive and :meth:`take` cuts exactly ``n``
    records off the front (splitting a chunk when the boundary lands
    inside one), so runs are the same contiguous prefixes of the inbound
    stream the scalar kernel cuts.
    """

    def __init__(self) -> None:
        self._chunks: List[tuple] = []
        self.total = 0

    def extend(self, rid, sptr, payload) -> None:
        if len(rid):
            self._chunks.append((rid, sptr, payload))
            self.total += len(rid)

    def take(self, n: int) -> tuple:
        taken: List[tuple] = []
        need = n
        while need:
            rid, sptr, payload = self._chunks[0]
            if len(rid) <= need:
                taken.append(self._chunks.pop(0))
                need -= len(rid)
            else:
                taken.append((rid[:need], sptr[:need], payload[:need]))
                self._chunks[0] = (rid[need:], sptr[need:], payload[need:])
                need = 0
        self.total -= n
        return (
            np.concatenate([c[0] for c in taken]),
            np.concatenate([c[1] for c in taken]),
            np.concatenate([c[2] for c in taken]),
        )


def sort_merge_runs(args: Tuple[str, int, int, int, int]) -> int:
    """Cut one partition's inbound RS files into sorted runs on disk."""
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, record_bytes, irun = core[:5]
    batch_records = core[5] if len(core) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    meter = active_meter()
    irun = max(1, irun)
    # Sharded cutters must not sweep stale runs (they would race each
    # other); the executor pre-cleans the partition before dispatch.
    if shard is None:
        for stale in run_paths(store, i):
            stale.unlink(missing_ok=True)
    run_base = 0 if shard is None else shard.index * RUN_SHARD_STRIDE
    buffer = _ColumnBuffer()
    run_id = 0
    inbound = 0

    def flush_run(count: int) -> None:
        nonlocal run_id
        if not count:
            return
        rid, sptr, payload = buffer.take(count)
        order = np.argsort(sptr, kind="stable")
        rel = RRelationFile.create(
            store.path(i, run_name(i, run_base + run_id)), count,
            record_bytes, overwrite=True,
        )
        try:
            rel.append_columns(rid[order], sptr[order], payload[order])
        except BaseException:
            rel.abort()
            raise
        rel.close()
        run_id += 1
        meter.release(count * record_bytes)

    lo = 0 if shard is None else shard.lo
    hi = None if shard is None else shard.hi
    base = 0
    for contributor in range(disks):
        path = store.path(i, rs_name(i, contributor))
        count = MappedSegment.record_count(path)
        start = max(0, lo - base)
        stop = count if hi is None else min(count, hi - base)
        base += count
        if shard is not None and start >= stop:
            continue
        with RRelationFile.open(path) as rel:
            for rid, sptr, payload in rel.iter_column_batches(
                batch_records, start, stop
            ):
                inbound += len(rid)
                meter.charge(len(rid) * record_bytes, "sort-run buffer")
                buffer.extend(rid, sptr, payload)
                while buffer.total >= irun:
                    flush_run(irun)
    flush_run(buffer.total)
    return inbound


class _RunCursor:
    """One sorted run's read cursor for the chunked k-way merge.

    Buffers at most one chunk of undelivered records (more only while
    this run is the tie on the merge bound); the file side is read with
    :meth:`RRelationFile.read_columns` so memory stays bounded by the
    chunk size, not the run length.

    With a key range ``[klo, khi)`` (the ``keys`` rebalance axis) each
    loaded chunk is masked to the range; because runs are sptr-sorted,
    once a chunk's tail reaches ``khi`` the rest of the file is out of
    range and the cursor reports exhausted.
    """

    def __init__(
        self,
        rel: RRelationFile,
        klo: int | None = None,
        khi: int | None = None,
    ) -> None:
        self.rel = rel
        self.length = len(rel)
        self.pos = 0  # file records loaded so far
        self.klo = klo
        self.khi = khi
        self.range_done = False  # key range exhausted before file end
        self.rid = self.sptr = self.payload = None
        if klo is not None:
            # Seek past lower shards' records instead of reading and
            # masking them away chunk by chunk.
            self.pos = run_lower_bound(rel, klo)

    @property
    def buffered(self) -> int:
        return 0 if self.sptr is None else len(self.sptr)

    @property
    def file_exhausted(self) -> bool:
        return self.range_done or self.pos >= self.length

    def load(self, chunk_records: int, meter, record_bytes: int) -> int:
        delivered = 0
        while not delivered and not self.file_exhausted:
            n = min(chunk_records, self.length - self.pos)
            rid, sptr, payload = self.rel.read_columns(self.pos, n)
            self.pos += n
            metrics = _metrics()
            if metrics.enabled:
                kind = self.rel.segment.kind
                metrics.count("storage.read.batches", 1, kind=kind)
                metrics.count("storage.read.records", n, kind=kind)
                metrics.count("storage.read.bytes", n * record_bytes, kind=kind)
            if self.klo is not None:
                if int(sptr[-1]) >= self.khi:
                    self.range_done = True
                keep = (sptr >= np.uint64(self.klo)) & (
                    sptr < np.uint64(self.khi)
                )
                if not keep.all():
                    rid, sptr, payload = rid[keep], sptr[keep], payload[keep]
                if not len(rid):
                    continue
            if self.buffered:
                self.rid = np.concatenate([self.rid, rid])
                self.sptr = np.concatenate([self.sptr, sptr])
                self.payload = np.concatenate([self.payload, payload])
            else:
                self.rid, self.sptr, self.payload = rid, sptr, payload
            meter.charge(len(rid) * record_bytes, "merge run chunk")
            delivered = len(rid)
        return delivered

    def take(self, n: int) -> tuple:
        out = (self.rid[:n], self.sptr[:n], self.payload[:n])
        if n >= self.buffered:
            self.rid = self.sptr = self.payload = None
        else:
            self.rid = self.rid[n:]
            self.sptr = self.sptr[n:]
            self.payload = self.payload[n:]
        return out


def sort_merge_merge_join(args: Tuple[str, int, int, int, int]) -> PairResult:
    """Merge one partition's sorted runs and join against sequential S_i.

    Multi-run merge is chunked k-way: each round computes the *bound* —
    the smallest last-buffered key among runs with unread file data — and
    everything strictly below it is provably complete in the buffers, so
    one stable argsort of those slices (concatenated in run order)
    reproduces ``heapq.merge``'s output order exactly, ties included.
    """
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects, record_bytes = core[:5]
    batch_records = core[5] if len(core) > 5 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    paths = run_paths(store, i)
    capacity = sum(MappedSegment.record_count(path) for path in paths)
    sink = PairSink(store.path(i, pairs_name("sm", i, shard)), capacity)
    try:
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            batch_cost = record_bytes + s_bytes

            def emit(rid, sptr, payload) -> None:
                sid, value = s_rel.dereference_columns(
                    pmap.offset_array(sptr)
                )
                sink.emit_arrays(rid, sid, payload, value)

            if shard is not None and paths:
                cursors = [
                    _RunCursor(RRelationFile.open(path), shard.lo, shard.hi)
                    for path in paths
                ]
                try:
                    _merge_runs(
                        cursors, batch_records, record_bytes, s_bytes,
                        meter, emit,
                    )
                finally:
                    for cursor in cursors:
                        cursor.rel.close()
            elif len(paths) == 1:
                with RRelationFile.open(paths[0]) as rel:
                    for rid, sptr, payload in rel.iter_column_batches(
                        batch_records
                    ):
                        meter.charge(len(rid) * batch_cost, "merge batch")
                        emit(rid, sptr, payload)
                        meter.release(len(rid) * batch_cost)
            elif paths:
                cursors = [
                    _RunCursor(RRelationFile.open(path)) for path in paths
                ]
                try:
                    _merge_runs(
                        cursors, batch_records, record_bytes, s_bytes,
                        meter, emit,
                    )
                finally:
                    for cursor in cursors:
                        cursor.rel.close()
        return sink.close()
    except BaseException:
        sink.abort()
        raise


def _merge_runs(
    cursors: List[_RunCursor],
    batch_records: int,
    record_bytes: int,
    s_bytes: int,
    meter,
    emit,
) -> None:
    """Drain the run cursors in global key order, emitting block-at-a-time."""
    while True:
        for cursor in cursors:
            if not cursor.buffered and not cursor.file_exhausted:
                cursor.load(batch_records, meter, record_bytes)
        if not any(cursor.buffered for cursor in cursors):
            return
        bounds = [
            int(cursor.sptr[-1])
            for cursor in cursors
            if not cursor.file_exhausted
        ]
        bound = min(bounds) if bounds else None
        taken: List[tuple] = []
        for cursor in cursors:
            if not cursor.buffered:
                continue
            if bound is None:
                n = cursor.buffered
            else:
                n = int(np.searchsorted(cursor.sptr, bound, side="left"))
            if n:
                taken.append(cursor.take(n))
        if not taken:
            # Every buffered key ties the bound; deepen the tying runs so
            # all equal keys are in memory before they are ordered.
            for cursor in cursors:
                if not cursor.file_exhausted and (
                    not cursor.buffered or int(cursor.sptr[-1]) == bound
                ):
                    cursor.load(batch_records, meter, record_bytes)
            continue
        rid = np.concatenate([t[0] for t in taken])
        sptr = np.concatenate([t[1] for t in taken])
        payload = np.concatenate([t[2] for t in taken])
        order = np.argsort(sptr, kind="stable")
        for lo in range(0, len(order), batch_records):
            block = order[lo:lo + batch_records]
            meter.charge(len(block) * s_bytes, "merge batch")
            emit(rid[block], sptr[block], payload[block])
            meter.release(len(block) * (record_bytes + s_bytes))


# ------------------------------------------------------- grace / hybrid hash

def _flush_bucket_chunks(
    store: Store,
    grouped: Dict[int, List[tuple]],
    buckets: int,
    record_bytes: int,
    contributor: int,
    chunk: int | None,
    order_fn=None,
) -> int:
    """Write accumulated per-target column chunks as bucketed spill files.

    The vector twin of the scalar ``_spill_bucket_groups``: one stable
    bucket-contiguous permutation (the partitioner's ``order`` — for the
    hash strategy, exactly the pre-refactor stable argsort; for
    radix/learned, bounded-fan-out radix passes) groups each target's
    records bucket-contiguously (encounter order within a bucket
    preserved), and the whole blob lands in one
    :meth:`BucketedRFile.append_buckets_packed` — byte-identical segment
    and directory, one slice write instead of one per bucket.
    """
    flushed = 0
    for target, chunks in grouped.items():
        rid = np.concatenate([c[0] for c in chunks])
        sptr = np.concatenate([c[1] for c in chunks])
        payload = np.concatenate([c[2] for c in chunks])
        bucket = np.concatenate([c[3] for c in chunks])
        if order_fn is None:
            order = np.argsort(bucket, kind="stable")
        else:
            order = order_fn(bucket)
        counts = np.bincount(bucket.astype(np.int64), minlength=buckets)
        spill = BucketedRFile.create(
            store.path(target, bucket_spill_name(target, contributor, chunk)),
            len(rid), buckets, record_bytes, overwrite=True,
        )
        try:
            spill.append_buckets_packed(
                spill.segment.layout.pack_columns(
                    rid[order], sptr[order], payload[order]
                ),
                [int(c) for c in counts],
            )
        except BaseException:
            spill.abort()
            raise
        spill.close()
        flushed += len(rid)
    grouped.clear()
    return flushed


def grace_partition(args: Tuple[str, int, int, int, int, int]) -> int:
    """Passes 0 and 1 for one contributor: hash into the BS_j_from_i files."""
    root, disks, i, s_objects, record_bytes, buckets = args[:6]
    spill_threshold = args[6] if len(args) > 6 else None
    batch_records = args[7] if len(args) > 7 else BATCH_RECORDS
    partitioner = args[8] if len(args) > 8 else "hash"
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_sizes = [pmap.partition_size(j) for j in range(disks)]
    part = resolve_partitioner(root, partitioner, part_sizes, buckets)
    grouped: Dict[int, List[tuple]] = {}
    moved = 0
    retained = 0
    chunk_id = 0

    def flush_groups(chunk: int | None) -> int:
        nonlocal retained
        flushed = _flush_bucket_chunks(
            store, grouped, buckets, record_bytes, i, chunk, part.order
        )
        meter.release(retained * record_bytes)
        retained = 0
        return flushed

    with store.open_r(i) as r_rel:
        for rid, sptr, payload in r_rel.iter_column_batches(batch_records):
            meter.charge(len(rid) * record_bytes, "grace bucket groups")
            retained += len(rid)
            parts, offs = pmap.locate_array(sptr)
            bucket = part.bucket_array(parts, offs, rid)
            for target in _targets_in_encounter_order(parts):
                mask = parts == target
                grouped.setdefault(target, []).append(
                    (rid[mask], sptr[mask], payload[mask], bucket[mask])
                )
            if spill_threshold is not None and retained >= spill_threshold:
                moved += flush_groups(chunk_id)
                chunk_id += 1
    if spill_threshold is None:
        moved += flush_groups(None)
    elif grouped:
        moved += flush_groups(chunk_id)
    return moved


def hybrid_hash_partition(
    args: Tuple[str, int, int, int, int, int, int, int]
) -> StageOutput:
    """Hybrid hash partitioning: join resident buckets on the fly."""
    root, disks, i, s_objects, record_bytes, buckets, resident = args[:7]
    spill_threshold = args[7] if len(args) > 7 else None
    batch_records = args[8] if len(args) > 8 else BATCH_RECORDS
    partitioner = args[9] if len(args) > 9 else "hash"
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_sizes = [pmap.partition_size(j) for j in range(disks)]
    part = resolve_partitioner(root, partitioner, part_sizes, buckets)
    grouped: Dict[int, List[tuple]] = {}
    moved = 0
    retained = 0
    chunk_id = 0
    s_rels: Dict[int, object] = {}

    def open_s(target: int):
        if target not in s_rels:
            s_rels[target] = store.open_s(target)
        return s_rels[target]

    def flush_groups(chunk: int | None) -> int:
        nonlocal retained
        flushed = _flush_bucket_chunks(
            store, grouped, buckets, record_bytes, i, chunk, part.order
        )
        meter.release(retained * record_bytes)
        retained = 0
        return flushed

    with store.open_r(i) as r_rel:
        sink = PairSink(store.path(i, pairs_name("hh", i)), len(r_rel))
        try:
            for rid, sptr, payload in r_rel.iter_column_batches(batch_records):
                meter.charge(len(rid) * record_bytes, "hybrid bucket groups")
                parts, offs = pmap.locate_array(sptr)
                bucket = part.bucket_array(parts, offs, rid)
                home = bucket < resident
                resident_count = int(home.sum())
                if resident_count:
                    for target in _targets_in_encounter_order(parts[home]):
                        mask = home & (parts == target)
                        s_rel = open_s(target)
                        s_bytes = s_rel.segment.layout.record_bytes
                        charged = int(mask.sum()) * s_bytes
                        meter.charge(charged, "resident S batch")
                        sid, value = s_rel.dereference_columns(offs[mask])
                        sink.emit_arrays(rid[mask], sid, payload[mask], value)
                        meter.release(charged)
                if resident_count < len(rid):
                    out = ~home
                    for target in _targets_in_encounter_order(parts[out]):
                        mask = out & (parts == target)
                        grouped.setdefault(target, []).append(
                            (rid[mask], sptr[mask], payload[mask], bucket[mask])
                        )
                    retained += len(rid) - resident_count
                meter.release(resident_count * record_bytes)
                if spill_threshold is not None and retained >= spill_threshold:
                    moved += flush_groups(chunk_id)
                    chunk_id += 1
            if spill_threshold is None:
                moved += flush_groups(None)
            elif grouped:
                moved += flush_groups(chunk_id)
            result = sink.close()
        except BaseException:
            sink.abort()
            raise
        finally:
            for rel in s_rels.values():
                rel.close()
    return StageOutput(moved, result)


def grace_probe(args: Tuple[str, int, int, int, int, int]) -> PairResult:
    """Probe passes for one partition: bucket table, ordered S access.

    The scalar kernel's ``TSIZE`` chain table is one stable argsort by
    refining chain: chains fill in inbound order and flatten in chain
    order, which is exactly the sorted-by-chain permutation.
    """
    shard = shard_of(args)
    core = args[:-1] if shard is not None else args
    root, disks, i, s_objects, buckets, tsize = core[:6]
    batch_records = core[6] if len(core) > 6 else BATCH_RECORDS
    store = _store(root, disks)
    pmap = _pmap(s_objects, disks)
    meter = active_meter()
    part_size = pmap.partition_size(i)
    bucket_lo = 0 if shard is None else shard.lo
    bucket_hi = buckets if shard is None else min(shard.hi, buckets)
    inbound: List[BucketedRFile] = []
    for contributor in range(disks):
        for path in bucket_spill_paths(store, i, contributor):
            inbound.append(BucketedRFile.open(path))
    capacity = sum(len(rel) for rel in inbound)
    sink = None
    try:
        sink = PairSink(store.path(i, pairs_name("probe", i, shard)), capacity)
        with store.open_s(i) as s_rel:
            s_bytes = s_rel.segment.layout.record_bytes
            for bucket in range(bucket_lo, bucket_hi):
                chunks: List[tuple] = []
                bucket_charged = 0
                for rel in inbound:
                    r_bytes = rel.segment.layout.record_bytes
                    rid, sptr, payload = rel.read_bucket_columns(bucket)
                    if not len(rid):
                        continue
                    meter.charge(len(rid) * r_bytes, "grace probe bucket")
                    bucket_charged += len(rid) * r_bytes
                    chunks.append((rid, sptr, payload))
                if chunks:
                    rid = np.concatenate([c[0] for c in chunks])
                    sptr = np.concatenate([c[1] for c in chunks])
                    payload = np.concatenate([c[2] for c in chunks])
                    offs = pmap.offset_array(sptr)
                    chain = (
                        offs * np.uint64(buckets * tsize) // part_size
                    ) % np.uint64(tsize)
                    order = np.argsort(chain, kind="stable")
                    for lo in range(0, len(order), batch_records):
                        block = order[lo:lo + batch_records]
                        meter.charge(len(block) * s_bytes, "dereferenced S batch")
                        sid, value = s_rel.dereference_columns(offs[block])
                        sink.emit_arrays(rid[block], sid, payload[block], value)
                        meter.release(len(block) * s_bytes)
                meter.release(bucket_charged)
        return sink.close()
    except BaseException:
        if sink is not None:
            sink.abort()
        raise
    finally:
        for rel in inbound:
            rel.close()
