"""Real-mmap parallel join backend (multiprocessing over mapped files)."""

from repro.parallel.runner import (
    REAL_ALGORITHMS,
    RealJoinError,
    RealJoinResult,
    run_real_join,
)
from repro.parallel.workers import PairResult

__all__ = [
    "PairResult",
    "REAL_ALGORITHMS",
    "RealJoinError",
    "RealJoinResult",
    "run_real_join",
]
