"""Real-mmap parallel join backend (multiprocessing over mapped files).

Algorithms are declarative pass plans (:mod:`repro.parallel.engine`)
executed by one generic engine; :mod:`repro.parallel.workers` holds the
per-partition stage kernels and :mod:`repro.parallel.runner` the
admission/governance facade.
"""

from repro.parallel.engine.stages import PassPlan, PassPlanError, plan_for
from repro.parallel.faults import (
    ALGORITHM_TASKS,
    FAULTS_FILE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCrash,
    InjectedDiskFull,
    InjectedFault,
    InjectedHang,
    InjectedMemPressure,
    InjectedTornWrite,
    RetryPolicy,
)
from repro.parallel.runner import (
    ON_PRESSURE_MODES,
    REAL_ALGORITHMS,
    RealJoinError,
    RealJoinResult,
    run_real_join,
)
from repro.parallel.workers import PairResult

__all__ = [
    "ALGORITHM_TASKS",
    "FAULTS_FILE",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedDiskFull",
    "InjectedFault",
    "InjectedHang",
    "InjectedMemPressure",
    "InjectedTornWrite",
    "ON_PRESSURE_MODES",
    "PairResult",
    "PassPlan",
    "PassPlanError",
    "REAL_ALGORITHMS",
    "RealJoinError",
    "RealJoinResult",
    "RetryPolicy",
    "plan_for",
    "run_real_join",
]
