"""Real-mmap parallel join backend (multiprocessing over mapped files)."""

from repro.parallel.runner import (
    REAL_ALGORITHMS,
    RealJoinError,
    RealJoinResult,
    run_real_join,
)

__all__ = [
    "REAL_ALGORITHMS",
    "RealJoinError",
    "RealJoinResult",
    "run_real_join",
]
