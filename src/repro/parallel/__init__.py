"""Real-mmap parallel join backend (multiprocessing over mapped files)."""

from repro.parallel.faults import (
    ALGORITHM_TASKS,
    FAULTS_FILE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCrash,
    InjectedDiskFull,
    InjectedFault,
    InjectedHang,
    InjectedMemPressure,
    InjectedTornWrite,
    RetryPolicy,
)
from repro.parallel.runner import (
    ON_PRESSURE_MODES,
    REAL_ALGORITHMS,
    RealJoinError,
    RealJoinResult,
    run_real_join,
)
from repro.parallel.workers import PairResult

__all__ = [
    "ALGORITHM_TASKS",
    "FAULTS_FILE",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedDiskFull",
    "InjectedFault",
    "InjectedHang",
    "InjectedMemPressure",
    "InjectedTornWrite",
    "ON_PRESSURE_MODES",
    "PairResult",
    "REAL_ALGORITHMS",
    "RealJoinError",
    "RealJoinResult",
    "RetryPolicy",
    "run_real_join",
]
