"""Deterministic fault injection and retry policy for the real-mmap backend.

The paper's runs assume every Rproc finishes its pass; production does not
get that luxury.  This module makes every failure mode of a per-partition
worker *reproducible*:

* a :class:`FaultSpec` names one fault — ``crash`` (the process dies
  mid-task), ``hang`` (the process stops making progress) or ``torn-write``
  (a partially written output segment is left behind at the moment of
  death) — pinned to a ``(task, partition, attempt)`` coordinate;
* a :class:`FaultPlan` is a set of specs, serialized as JSON into the
  store root (``faults.json``, the same files-only protocol as the
  metrics marker) so faults reach pool processes that were forked before
  the join began;
* :func:`maybe_inject`, called by every worker at task entry, fires the
  matching spec exactly once per attempt — attempts are counted in small
  per-``(task, partition)`` state files in the store root, so the count
  survives the very process deaths it is instrumenting.

Recovery is safe because passes are idempotent: a worker's outputs become
visible only through the storage layer's atomic tmp-write/rename protocol
(:mod:`repro.storage.segment`), so a retried attempt simply re-creates and
atomically replaces whatever the dead attempt left behind.

In a pool worker (a daemonic process) a ``crash`` is a real ``os._exit``;
inline (``use_processes=False``) the same spec raises
:class:`InjectedCrash` instead, so the whole failure matrix is testable
without killing the test runner.  A ``hang`` sleeps and then *exits* —
never completes — so an abandoned task can never race its own retry.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import errno as _errno

from repro.governor.errors import MemoryExhausted
from repro.storage.segment import HEADER, MAGIC, PAGE_SIZE, MappedSegment

#: Presence of this file in the store root arms fault injection.
FAULTS_FILE = "faults.json"

#: ``crash``/``hang``/``torn-write`` exercise the PR-3 recovery layer;
#: ``disk-full`` and ``mem-pressure`` exercise the governor — they raise
#: (never kill) in both pool and inline modes, because resource pressure
#: is a *classified error* the runner degrades on, not a process death.
#: ``bit-flip`` and ``truncate-payload`` exercise the integrity layer: a
#: *structurally valid published* segment whose payload silently rotted,
#: which only the checksum footer (or the file-length check) can catch.
FAULT_KINDS = (
    "crash", "hang", "torn-write", "disk-full", "mem-pressure",
    "bit-flip", "truncate-payload",
)

#: Worker task names per algorithm, in pass order — the coordinates a
#: fault plan pins to, and the basis of "kill one worker in every pass".
#: Kept static (this module must import without the engine) but pinned
#: by a test against each registered pass plan's ``tasks()``.
ALGORITHM_TASKS: Dict[str, tuple] = {
    "nested-loops": ("nested_loops_pass0", "nested_loops_pass1"),
    "sort-merge": (
        "sort_merge_partition",
        "sort_merge_runs",
        "sort_merge_merge_join",
    ),
    "grace": ("grace_partition", "grace_probe"),
    "grace-radix": ("grace_partition", "grace_probe"),
    "grace-learned": ("grace_partition", "grace_probe"),
    "hybrid-hash": ("hybrid_hash_partition", "grace_probe"),
}

# Torn-write victims: the one output file each task is guaranteed to
# re-create on retry, so the garbage left at its *final* path exercises
# the overwrite-on-retry path as well as the tmp-orphan path.  The
# bucketed partition passes only create a BS file for targets that
# records hash to, so they get a tmp-only tear (None) — hybrid's pairs
# sink would be a valid victim but its name depends on the pairs label,
# and the tmp-orphan path is the interesting one there anyway.
_TORN_VICTIMS: Dict[str, Optional[str]] = {
    "nested_loops_pass0": "PAIRS_p0_{i}",
    "nested_loops_pass1": "PAIRS_p1_{i}",
    "sort_merge_partition": "RS{i}_from{i}",
    "sort_merge_runs": "RUN{i}_0",
    "sort_merge_merge_join": "PAIRS_sm_{i}",
    "grace_partition": None,
    "hybrid_hash_partition": "PAIRS_hh_{i}",
    "grace_probe": "PAIRS_probe_{i}",
}

_EXIT_CRASH = 23
_EXIT_HANG = 24
_EXIT_TORN = 25
_EXIT_CORRUPT = 26


class FaultPlanError(ValueError):
    """Raised for malformed fault plans."""


class InjectedFault(RuntimeError):
    """Base of the exceptions injected faults raise in inline execution."""


class InjectedCrash(InjectedFault):
    """Inline stand-in for a worker process dying mid-task."""


class InjectedHang(InjectedFault):
    """Inline stand-in for a worker that stops making progress.

    The dispatcher treats this exactly like a task timeout, so the
    timeout/retry path is testable without real wall-clock waits.
    """


class InjectedTornWrite(InjectedFault):
    """Inline stand-in for a crash that leaves a torn output segment."""


class InjectedCorruption(InjectedFault):
    """Inline stand-in for a crash that leaves a *silently corrupt*
    published segment — structurally valid header, rotten payload."""


class InjectedDiskFull(InjectedFault, OSError):
    """An ``ENOSPC`` exactly as the OS would raise it mid-``ftruncate``.

    Deliberately a *raw* ``OSError`` — the worker boundary must prove it
    classifies OS-level disk exhaustion into
    :class:`~repro.governor.errors.DiskExhausted`; injecting an already-
    classified error would test nothing.
    """

    def __init__(self, task: str, partition: int) -> None:
        super().__init__(
            f"injected disk-full in {task} partition {partition}"
        )
        # Multiple inheritance leaves OSError's errno unset; classification
        # routes on it, so set it the way a real ENOSPC would carry it.
        self.errno = _errno.ENOSPC
        self._coords = (task, partition)

    def __reduce__(self):
        return (self.__class__, self._coords)


class InjectedMemPressure(InjectedFault, MemoryExhausted):
    """A worker hitting its memory budget at a chosen coordinate.

    Already classified (it *is* a :class:`MemoryExhausted`), mirroring the
    watchdog raising mid-charge — including surviving pool pickling with
    its requested/limit/used fields intact.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, pinned to a (task, partition, attempt) point."""

    kind: str
    task: str
    partition: int
    attempt: int = 0
    #: How long a pool-mode hang sleeps before dying; inline hangs raise
    #: immediately, so only real-process tests pay wall-clock for this.
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.partition < 0 or self.attempt < 0:
            raise FaultPlanError(
                f"partition and attempt must be non-negative in {self}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "task": self.task,
            "partition": self.partition,
            "attempt": self.attempt,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            return cls(
                kind=data["kind"],
                task=data["task"],
                partition=int(data["partition"]),
                attempt=int(data.get("attempt", 0)),
                hang_s=float(data.get("hang_s", 3600.0)),
            )
        except (KeyError, TypeError) as error:
            raise FaultPlanError(f"malformed fault spec {data!r}: {error}")


@dataclass
class FaultPlan:
    """A deterministic set of faults for one join run."""

    faults: List[FaultSpec] = field(default_factory=list)

    def spec_for(
        self, task: str, partition: int, attempt: int
    ) -> Optional[FaultSpec]:
        for spec in self.faults:
            if (
                spec.task == task
                and spec.partition == partition
                and spec.attempt == attempt
            ):
                return spec
        return None

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        return json.dumps({"faults": [s.to_dict() for s in self.faults]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        if not isinstance(data, dict) or not isinstance(
            data.get("faults"), list
        ):
            raise FaultPlanError(
                'a fault plan is {"faults": [{kind, task, partition, ...}]}'
            )
        return cls([FaultSpec.from_dict(entry) for entry in data["faults"]])

    @classmethod
    def parse(cls, source: str) -> "FaultPlan":
        """Parse a CLI argument: a JSON file path or an inline JSON string."""
        path = Path(source)
        try:
            exists = path.is_file()
        except OSError:
            exists = False
        return cls.from_json(path.read_text() if exists else source)

    # --------------------------------------------------------- constructors

    @classmethod
    def single(
        cls, kind: str, task: str, partition: int, attempt: int = 0, **kw
    ) -> "FaultPlan":
        return cls([FaultSpec(kind, task, partition, attempt, **kw)])

    @classmethod
    def crash_every_pass(
        cls, algorithm: str, partition: int = 0, attempt: int = 0
    ) -> "FaultPlan":
        """Kill one worker in every pass of ``algorithm`` (acceptance plan)."""
        if algorithm not in ALGORITHM_TASKS:
            raise FaultPlanError(f"unknown algorithm {algorithm!r}")
        return cls(
            [
                FaultSpec("crash", task, partition, attempt)
                for task in ALGORITHM_TASKS[algorithm]
            ]
        )

    # ----------------------------------------------------------- store side

    def install(self, root: str | os.PathLike) -> Path:
        """Arm this plan for every worker that opens ``root``."""
        path = Path(root) / FAULTS_FILE
        path.write_text(self.to_json())
        return path

    @staticmethod
    def load(root: str | os.PathLike) -> Optional["FaultPlan"]:
        path = Path(root) / FAULTS_FILE
        if not path.exists():
            return None
        return FaultPlan.from_json(path.read_text())


@dataclass
class RetryPolicy:
    """How the runner dispatches, times out and retries worker tasks."""

    #: Extra attempts per task after the first (0 = fail fast).
    retries: int = 2
    #: Seconds a pool task may run before it is declared dead/hung and
    #: retried.  ``None`` disables the watchdog (a crashed pool worker is
    #: then only detected if the pool itself reports it).
    task_timeout: Optional[float] = None
    #: Base of the exponential backoff between retry rounds.
    backoff_s: float = 0.05
    #: When pool attempts are exhausted, run the still-failing tasks in
    #: the parent process as a last resort (graceful degradation).
    fallback_inline: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise FaultPlanError(f"retries cannot be negative: {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise FaultPlanError(
                f"task_timeout must be positive: {self.task_timeout}"
            )


# ------------------------------------------------------------ worker hooks

def attempt_state_path(
    root: str | os.PathLike, task: str, partition: int
) -> Path:
    """Where one (task, partition)'s execution count is persisted."""
    return Path(root) / f"fault_attempt_{task}_{partition}"


def _bump_attempt(root: str, task: str, partition: int) -> int:
    """Count this execution; returns the 0-based attempt number."""
    path = attempt_state_path(root, task, partition)
    try:
        attempt = int(path.read_text())
    except (OSError, ValueError):
        attempt = 0
    path.write_text(str(attempt + 1))
    return attempt


def _disk_path(root: str, partition: int, name: str) -> Path:
    # Mirrors Store.path without constructing a Store (no mkdir side effects).
    return Path(root) / f"disk{partition}" / f"{name}.seg"


def _write_torn_segment(path: Path) -> None:
    """A segment whose header claims more records than it can hold — the
    signature of a writer that died between extending the file and
    finishing its data.  ``MappedSegment.open`` must reject it."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(HEADER.pack(MAGIC, 128, 4, 977) + b"torn segment")


def _read_payload_header(file_obj, path: Path) -> tuple:
    header = file_obj.read(HEADER.size)
    if len(header) < HEADER.size:
        raise FaultPlanError(f"{path} is not a segment file")
    magic, record_bytes, capacity, count = HEADER.unpack_from(header)
    if magic != MAGIC or count <= 0:
        raise FaultPlanError(f"{path} has no published records to corrupt")
    return record_bytes, capacity, count


def flip_payload_bit(
    path: str | os.PathLike, record: int = 0, bit: int = 0
) -> None:
    """Flip one payload bit of a published segment, in place.

    Header and checksum footer stay exactly as the writer left them —
    this is *silent* corruption, invisible to the torn-header checks and
    catchable only by the payload CRC.  The chaos harness's offline
    corruption primitive; also what the ``bit-flip`` fault kind fires.
    """
    path = Path(path)
    with open(path, "r+b") as file_obj:
        record_bytes, _capacity, count = _read_payload_header(file_obj, path)
        offset = PAGE_SIZE + (record % count) * record_bytes
        file_obj.seek(offset)
        byte = file_obj.read(1)
        file_obj.seek(offset)
        file_obj.write(bytes([byte[0] ^ (1 << (bit % 8))]))


def truncate_payload(path: str | os.PathLike) -> None:
    """Cut a published segment's data area short, in place.

    Models a filesystem losing tail blocks after the atomic publish (the
    rename protocol cannot help — the file *was* complete once).  The
    shortened file fails the storage layer's declared-size check on the
    next ``open``/``record_count``/scrub.
    """
    path = Path(path)
    with open(path, "r+b") as file_obj:
        record_bytes, capacity, _count = _read_payload_header(file_obj, path)
        file_obj.truncate(PAGE_SIZE + capacity * record_bytes // 2)


def _write_corrupt_segment(path: Path, kind: str) -> None:
    """Publish a small *valid* segment at ``path``, then corrupt it the
    way ``kind`` names — exactly the artifact a scrub must catch."""
    path.parent.mkdir(parents=True, exist_ok=True)
    segment = MappedSegment.create(path, 4, 32, overwrite=True)
    try:
        segment.append_batch(bytes(range(128)))
    except BaseException:
        segment.discard()
        raise
    segment.close()
    if kind == "bit-flip":
        flip_payload_bit(path)
    else:
        truncate_payload(path)


def _fire(spec: FaultSpec, root: str, task: str, partition: int) -> None:
    in_pool = multiprocessing.current_process().daemon
    if spec.kind == "disk-full":
        # Raised (not exited) in both modes: resource pressure is an error
        # the worker boundary classifies and the runner degrades on.  The
        # raw OSError pickles back through the pool like any task failure.
        raise InjectedDiskFull(task, partition)
    if spec.kind == "mem-pressure":
        raise InjectedMemPressure(
            f"injected memory pressure in {task} partition {partition}",
            requested=1 << 20,
            limit=1 << 20,
            used=1 << 20,
        )
    if spec.kind == "crash":
        if in_pool:
            os._exit(_EXIT_CRASH)
        raise InjectedCrash(f"injected crash in {task} partition {partition}")
    if spec.kind == "hang":
        if in_pool:
            # Sleep, then die without completing: an abandoned task must
            # never wake up and race the retry that replaced it.
            time.sleep(spec.hang_s)
            os._exit(_EXIT_HANG)
        raise InjectedHang(f"injected hang in {task} partition {partition}")
    if spec.kind in ("bit-flip", "truncate-payload"):
        # Silent corruption: a *published, structurally valid* victim
        # whose payload rotted after the atomic rename.  The retry must
        # overwrite it — and until it does, any reader must refuse it.
        victim = _TORN_VICTIMS.get(task)
        if victim is not None:
            final = _disk_path(root, partition, victim.format(i=partition))
            _write_corrupt_segment(final, spec.kind)
        else:
            tmp = _disk_path(root, partition, f"BS{partition}_from{partition}")
            _write_torn_segment(tmp.with_name(tmp.name + ".tmp"))
        if in_pool:
            os._exit(_EXIT_CORRUPT)
        raise InjectedCorruption(
            f"injected {spec.kind} in {task} partition {partition}"
        )
    # torn-write: leave partial output where the retry must overwrite it.
    victim = _TORN_VICTIMS.get(task)
    if victim is not None:
        final = _disk_path(root, partition, victim.format(i=partition))
        _write_torn_segment(final)
        _write_torn_segment(final.with_name(final.name + ".tmp"))
    else:
        tmp = _disk_path(root, partition, f"BS{partition}_from{partition}")
        _write_torn_segment(tmp.with_name(tmp.name + ".tmp"))
    if in_pool:
        os._exit(_EXIT_TORN)
    raise InjectedTornWrite(
        f"injected torn write in {task} partition {partition}"
    )


def maybe_inject(root: str, task: str, partition: int) -> None:
    """Fire the armed fault for this (task, partition, attempt), if any.

    Costs one ``stat`` when no plan is installed.  Every execution bumps
    the persistent attempt counter, so a retried task sees attempt 1, 2,
    ... and a spec pinned to attempt 0 fires exactly once.
    """
    if not Path(root, FAULTS_FILE).exists():
        return
    plan = FaultPlan.load(root)
    if plan is None or not plan.faults:
        return
    attempt = _bump_attempt(root, task, partition)
    spec = plan.spec_for(task, partition, attempt)
    if spec is not None:
        _fire(spec, root, task, partition)


def sweep_fault_state(root: str | os.PathLike) -> None:
    """Remove the plan and attempt counters (every run-exit path)."""
    root = Path(root)
    if not root.exists():
        return
    (root / FAULTS_FILE).unlink(missing_ok=True)
    for path in root.glob("fault_attempt_*"):
        path.unlink(missing_ok=True)
