"""Crash-safe pass-level checkpoints for the plan executor.

The paper's whole premise is that join intermediates live in memory-
mapped files — which means after a process crash the OS has usually
already persisted every *completed* pass.  This module makes that
surviving work reusable instead of discarding it:

* after each stage barrier the executor records the stage's published,
  checksum-verified artifacts into a manifest (``checkpoint.json`` in
  the store root), written with the same tmp-write/atomic-rename idiom
  as segment publication — a reader can only ever see a complete
  manifest, never a torn one;
* ``execute_plan(resume=True)`` validates the manifest against the
  on-disk segments (full payload scrub, not just existence — a bit
  flipped while the driver was dead must send the producing stage back
  to work) and replays the completed stages' outcomes, restarting from
  the first incomplete stage;
* the manifest carries the *exact* plan knobs and degradation count the
  recorded stages ran under, so the resumed run re-derives every
  rebalance/degradation decision deterministically and its output is
  bit-identical to an uninterrupted run.

A manifest only ever describes work under one ``(algorithm, workload,
plan)`` identity; an identity mismatch — or a base relation that fails
its scrub — invalidates the whole manifest and the run starts fresh.  A
corrupt *stage artifact* is cheaper: the manifest is truncated to the
longest clean prefix of stages, so only the producing stage (and what
follows it) re-runs.  Losing a checkpoint costs recomputation; trusting
a wrong one costs correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.engine.task import PairResult
from repro.storage.segment import (
    MappedSegment,
    StorageError,
    scrub_segment,
    segment_footer,
)
from repro.storage.store import Store

MANIFEST_NAME = "checkpoint.json"
MANIFEST_VERSION = 1


def manifest_path(root: str | os.PathLike) -> Path:
    return Path(root) / MANIFEST_NAME


def workload_signature(workload) -> str:
    """A stable identity for (workload spec, partitioning).

    Two runs with equal signatures materialize byte-identical R/S
    partitions (generation is seeded), which is what makes replaying a
    manifest recorded by a dead driver sound.
    """
    blob = json.dumps(
        {"disks": workload.disks, **dataclasses.asdict(workload.spec)},
        sort_keys=True,
    )
    return hashlib.sha1(blob.encode()).hexdigest()


def _temp_snapshot(store: Store) -> set:
    """Every published temp segment, as store-root-relative paths."""
    seen = set()
    for disk in range(store.disks):
        for path in store.temp_paths(disk):
            seen.add(str(path.relative_to(store.root)))
    return seen


class CheckpointWriter:
    """Accumulates stage records and publishes the manifest atomically."""

    def __init__(
        self,
        root: str | os.PathLike,
        algorithm: str,
        signature: str,
        replayed: Optional[List[dict]] = None,
    ) -> None:
        self._root = Path(root)
        self._algorithm = algorithm
        self._signature = signature
        # Resumed runs preload the stages they replayed: a second crash
        # must not forget the work the first resume already proved.
        self._records: List[dict] = list(replayed or [])
        self._before: set = set()

    def begin_stage(self, store: Store) -> None:
        """Snapshot the store's temps so the barrier can diff them."""
        self._before = _temp_snapshot(store)

    def record_stage(
        self,
        store: Store,
        *,
        label: str,
        kind: str,
        wall_ms: float,
        count: int,
        checksum: Optional[int],
        totals: Dict[str, int],
        pair_files: Sequence[PairResult],
        rebalance: Optional[dict],
        plan: dict,
        runtime_degradations: int,
    ) -> None:
        """Record one completed stage barrier and publish the manifest."""
        artifacts = []
        for rel in sorted(_temp_snapshot(store) - self._before):
            path = self._root / rel
            footer = segment_footer(path)
            artifacts.append(
                {
                    "path": rel,
                    "count": MappedSegment.record_count(path),
                    "crc": footer[0] if footer is not None else None,
                }
            )
        self._records.append(
            {
                "label": label,
                "kind": kind,
                "wall_ms": wall_ms,
                "count": count,
                "checksum": checksum,
                "totals": dict(totals),
                "pair_files": [
                    {
                        "count": result.count,
                        "checksum": result.checksum,
                        "path": str(
                            Path(result.path).relative_to(self._root)
                        ),
                    }
                    for result in pair_files
                ],
                "rebalance": rebalance,
                "artifacts": artifacts,
            }
        )
        document = {
            "version": MANIFEST_VERSION,
            "algorithm": self._algorithm,
            "signature": self._signature,
            "plan": plan,
            "runtime_degradations": runtime_degradations,
            "written_at": time.time(),
            "stages": self._records,
        }
        # Same publish protocol as a segment: a crash mid-write leaves
        # the previous manifest intact, never a torn JSON.
        target = manifest_path(self._root)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(document, indent=1))
        os.replace(tmp, target)

    def reset(self) -> None:
        """Drop all records and the manifest (a degradation round resets
        the run's temps, so everything recorded is about to be wiped)."""
        self._records.clear()
        self._before = set()
        discard_manifest(self._root)


def discard_manifest(root: str | os.PathLike) -> None:
    manifest_path(root).unlink(missing_ok=True)
    tmp = manifest_path(root)
    tmp.with_name(tmp.name + ".tmp").unlink(missing_ok=True)


def load_manifest(root: str | os.PathLike) -> Optional[dict]:
    """The store's manifest, or None when absent/unreadable/wrong-version."""
    path = manifest_path(root)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(document, dict)
        or document.get("version") != MANIFEST_VERSION
        or not isinstance(document.get("stages"), list)
    ):
        return None
    return document


@dataclasses.dataclass
class ResumeState:
    """What a validated manifest lets the executor skip."""

    records: List[dict]
    plan: dict
    runtime_degradations: int
    manifest_age_s: float
    segments_scrubbed: int
    #: Store-root-relative paths of every recorded artifact — temps not
    #: in this set are partial outputs of the incomplete stage and must
    #: be cleared before it re-runs (glob-driven consumers would
    #: otherwise double-count them).
    recorded_paths: set


def validate_manifest(
    manifest: dict,
    store: Store,
    algorithm: str,
    signature: str,
    stage_labels: Sequence[str],
) -> Tuple[Optional[ResumeState], Optional[str], int]:
    """Prove a manifest against the on-disk store.

    Returns ``(state, problem, scrub_failures)``.  ``state`` is None
    whenever the whole manifest is untrustworthy — wrong identity, a
    stage sequence that is not a prefix of the current plan, or a base
    relation failing its payload scrub.  A corrupt or missing *stage
    artifact* only costs the stages from its producer onward: the
    records are truncated to the longest clean prefix (``problem`` then
    reports what was dropped while ``state`` still replays the prefix).
    The caller falls back to a fresh run on None; resume is an
    optimization, never a correctness risk.
    """
    scrubbed = 0
    failures = 0
    if manifest.get("algorithm") != algorithm:
        return None, (
            f"manifest records algorithm {manifest.get('algorithm')!r}, "
            f"not {algorithm!r}"
        ), 0
    if manifest.get("signature") != signature:
        return None, "manifest records a different workload", 0
    records = manifest["stages"]
    labels = [record.get("label") for record in records]
    if labels != list(stage_labels[: len(labels)]):
        return None, (
            f"manifest stages {labels} are not a prefix of the plan's "
            f"{list(stage_labels)}"
        ), 0
    if not records:
        return None, "manifest records no completed stages", 0
    plan = manifest.get("plan")
    if not isinstance(plan, dict):
        return None, "manifest carries no plan", 0
    # The base relations first: a warm store whose R/S rotted must be
    # re-materialized, not trusted.
    for disk in range(store.disks):
        for name in ("R", "S"):
            path = store.path(disk, name)
            try:
                scrub_segment(path)
                scrubbed += 1
            except StorageError as error:
                return None, f"base relation failed scrub: {error}", 1
    recorded_paths: set = set()
    problem: Optional[str] = None
    kept = len(records)
    for index, record in enumerate(records):
        stage_paths: set = set()
        stage_problem: Optional[str] = None
        for artifact in record.get("artifacts", []):
            rel = artifact["path"]
            path = store.root / rel
            try:
                scrub_segment(path)
                scrubbed += 1
            except StorageError as error:
                failures += 1
                stage_problem = f"artifact failed scrub: {error}"
                break
            footer = segment_footer(path)
            if artifact.get("crc") is not None and (
                footer is None or footer[0] != artifact["crc"]
            ):
                failures += 1
                stage_problem = (
                    f"{rel} does not match the checksum the manifest "
                    "recorded (the file was replaced since the barrier)"
                )
                break
            if MappedSegment.record_count(path) != artifact.get("count"):
                failures += 1
                stage_problem = (
                    f"{rel} does not hold the {artifact.get('count')} "
                    "records the manifest recorded"
                )
                break
            stage_paths.add(rel)
        if stage_problem is not None:
            # The producing stage must re-run; everything after it
            # consumed its output, so it re-runs too.  The clean prefix
            # below stays replayable.
            kept = index
            problem = (
                f"stage {record.get('label')!r} dropped from the "
                f"checkpoint ({stage_problem}); resuming before it"
            )
            break
        recorded_paths |= stage_paths
    records = records[:kept]
    if not records:
        return None, problem or "manifest records no intact stages", failures
    age = max(0.0, time.time() - float(manifest.get("written_at", 0.0)))
    return (
        ResumeState(
            records=records,
            plan=plan,
            runtime_degradations=int(
                manifest.get("runtime_degradations", 0)
            ),
            manifest_age_s=age,
            segments_scrubbed=scrubbed,
            recorded_paths=recorded_paths,
        ),
        problem,
        failures,
    )
