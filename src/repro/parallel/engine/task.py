"""The engine-side task wrapper and the shared worker utilities.

Everything cross-cutting that every stage kernel used to re-implement
lives here exactly once:

* :func:`run_task` — the module-level (hence picklable) wrapper the
  executor dispatches to the pool.  It fires armed faults, loads budgets,
  activates the memory meter and a process-local metrics registry,
  snapshots the registry to the task's JSON sidecar, and classifies any
  raw ``OSError``/``MemoryError`` escaping a kernel into the governor's
  :class:`~repro.governor.errors.ResourceExhausted` hierarchy (which
  pickles intact through the pool);
* :class:`PairSink` / :class:`PairResult` — streaming pair output into a
  mapped segment, returning only ``(count, checksum, path)``;
* batch utilities (:func:`rebatch`, :func:`run_stream`) and the
  stage-owned artifact naming scheme (:func:`pairs_name`,
  :func:`run_name` / :func:`run_paths`, :func:`bucket_spill_name` /
  :func:`bucket_spill_paths`) — so producers and consumers of spill files
  agree on names through one module instead of duplicated string logic.

Kernels are plain functions registered by name
(:func:`register_kernel`); the executor ships only the *name* plus the
argument tuple across the pool, and :func:`run_task` resolves it in the
worker process — keeping the pickled payload tiny and the kernels
decorator-free (directly callable in tests).
"""

from __future__ import annotations

import importlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, NamedTuple

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro import config
from repro.core.records import RObject
from repro.governor.budget import load_budgets
from repro.governor.errors import ResourceExhausted, classify_os_error
from repro.obs.registry import MetricsRegistry, activate, active, deactivate
from repro.obs.spans import span
from repro.governor.watchdog import (
    MemoryMeter,
    activate_meter,
    deactivate_meter,
    rss_high_water_bytes,
)
from repro.parallel.faults import maybe_inject
from repro.storage.relation import PairsFile, RRelationFile
from repro.storage.store import Store

BATCH_RECORDS = 4096
CHECKSUM_MOD = 1 << 61

#: Presence of this file in the store root switches worker metrics on.
OBS_MARKER = "metrics.on"

#: The store-root marker carrying the run's kernel mode to the workers.
#: Pool workers inherit their environment at fork time, so an env var
#: cannot switch modes mid-run (a degradation round may flip vector →
#: scalar); a file in the store root follows the same files-only
#: cross-process protocol as the metrics marker and the budget file.
KERNEL_MODE_MARKER = "kernels.mode"

KERNEL_MODES = ("scalar", "vector")

#: Environment fallback for direct kernel calls and un-marked stores
#: (registered, with the rest of the REPRO_* knobs, in repro.config).
KERNELS_ENV = config.knob("kernels").env


def metrics_sidecar(root: str | Path, task: str, slot: int | str) -> Path:
    """Where one worker snapshots its registry for the parent to merge.

    ``slot`` is the partition index for an ordinary task, or the string
    ``"{partition}s{shard}"`` when the rebalancer split the partition's
    work across shard tasks (each shard snapshots its own sidecar).
    """
    return Path(root) / f"metrics_{task}_{slot}.json"


# ---------------------------------------------------------------- sharding

class Shard(NamedTuple):
    """One slice of a rebalanced task's input, attached by the executor.

    ``index``/``count`` place the shard among its siblings for the same
    partition; ``lo``/``hi`` bound the half-open input range along the
    stage's declared axis (record positions, sorted pointer keys, or
    bucket numbers — the kernel knows which).  The executor appends the
    shard as the *last* element of the kernel argument tuple so the
    ``(store_root, disks, partition)`` prefix every kernel and fault
    coordinate relies on is untouched.
    """

    index: int
    count: int
    lo: int
    hi: int


#: Run-id namespace per shard: sorted runs cut by shard ``k`` are numbered
#: ``k * RUN_SHARD_STRIDE + local_id`` so the numeric run-id sort used by
#: :func:`run_paths` yields shard order, then cut order — i.e. exactly the
#: concatenated inbound order an unsharded sort-run pass would produce.
RUN_SHARD_STRIDE = 1 << 20


def shard_of(args) -> Shard | None:
    """The shard attached to a kernel argument tuple, if any."""
    tail = args[-1] if len(args) > 3 else None
    return tail if isinstance(tail, Shard) else None


def task_slot(partition: int, shard: Shard | None) -> int | str:
    """The sidecar/label slot for a task: partition, or partition+shard."""
    return partition if shard is None else f"{partition}s{shard.index}"


# ------------------------------------------------------------- kernel mode

def vector_kernels_available() -> bool:
    """Whether the numpy-backed kernel implementations can run here."""
    try:
        from repro.parallel import vectorized
    except Exception:  # pragma: no cover - import damage counts as absent
        return False
    return vectorized.HAVE_NUMPY


def default_kernel_mode() -> str:
    """Mode when nothing chose one: env override, else vector if possible."""
    env = config.env_choice("kernels")
    if env is not None:
        return env
    return "vector" if vector_kernels_available() else "scalar"


def resolve_kernel_mode(root: str | Path) -> str:
    """The mode a kernel should run in for the store at ``root``.

    Marker file first (the executor installs one per round, so a degraded
    re-plan switches every worker), then the environment, then the
    default.  A vector request degrades to scalar when numpy is missing —
    the knob selects an implementation, never breaks a join.
    """
    try:
        text = (
            Path(root, KERNEL_MODE_MARKER).read_text().strip().lower()
        )
    except OSError:
        text = ""
    mode = text if text in KERNEL_MODES else default_kernel_mode()
    if mode == "vector" and not vector_kernels_available():
        mode = "scalar"
    return mode


def install_kernel_mode(root: str | Path, mode: str) -> None:
    """Publish the run's kernel mode for the workers (driver-side)."""
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; choices: {KERNEL_MODES}"
        )
    Path(root, KERNEL_MODE_MARKER).write_text(mode + "\n")


def sweep_kernel_mode(root: str | Path) -> None:
    """Remove the kernel-mode marker (run teardown)."""
    Path(root, KERNEL_MODE_MARKER).unlink(missing_ok=True)


# ---------------------------------------------------------- kernel registry

_KERNELS: Dict[str, Callable] = {}


def register_kernel(func: Callable) -> Callable:
    """Register a stage kernel under its function name.

    Returns ``func`` unchanged — kernels stay plain callables (tests
    invoke them directly with a raw argument tuple; the null-object
    fallbacks of :func:`~repro.governor.watchdog.active_meter` and
    :func:`~repro.obs.registry.active` make that legal).
    """
    _KERNELS[func.__name__] = func
    return func


def resolve_kernel(name: str) -> Callable:
    """Look up a kernel by name, importing the kernel module on demand.

    A fresh pool process may run :func:`run_task` before anything imported
    :mod:`repro.parallel.workers`; the lazy import fills the registry.
    """
    if name not in _KERNELS:
        importlib.import_module("repro.parallel.workers")
    try:
        return _KERNELS[name]
    except KeyError:
        raise LookupError(f"no registered kernel {name!r}") from None


def run_task(payload):
    """Execute one ``(kernel_name, args)`` task under the armed hooks.

    This is the backend's single instrumentation point *and* its
    classification boundary: any raw ``OSError``/``MemoryError`` that
    escapes a kernel — a real ``ENOSPC`` out of an ``ftruncate``, an
    injected ``disk-full``, an allocator failure — leaves here as a
    classified :class:`ResourceExhausted` subtype, so the executor can
    tell "this join needs a smaller plan" apart from "the code is
    broken".  Uninstrumented dispatch (no marker, no budget file, no
    fault plan) costs three ``stat`` calls.
    """
    task, args = payload
    root, partition = args[0], args[2]
    func = resolve_kernel(task)
    try:
        return _governed(func, task, args, root, partition)
    except ResourceExhausted:
        raise
    except (MemoryError, OSError) as error:
        classified = classify_os_error(error, f"{task} partition {partition}")
        if classified is not None:
            raise classified from error
        raise


def _governed(func: Callable, task: str, args, root, partition):
    """Run one kernel under the armed budgets/metrics, if any.

    The fault hook fires first — before any registry or file handle is
    acquired — because a real crash would also strike before the task
    produced anything.  When the rebalancer split a partition into
    shards, only shard 0 consults the fault plan: fault coordinates are
    ``(task, partition, attempt)`` and must keep firing exactly once per
    attempt regardless of how the work was sliced.
    """
    shard = shard_of(args)
    slot = task_slot(partition, shard)
    if shard is None or shard.index == 0:
        maybe_inject(root, task, partition)
    budgets = load_budgets(root)
    metrics_on = Path(root, OBS_MARKER).exists()
    if budgets is None and not metrics_on:
        return func(args)
    limit = budgets.worker_mem_budget_bytes if budgets is not None else None
    meter = activate_meter(MemoryMeter(limit))
    try:
        if not metrics_on:
            return func(args)
        registry = activate(MetricsRegistry())
        started = time.perf_counter()
        try:
            with span("task", task=task, worker=slot):
                result = func(args)
        finally:
            deactivate()
        wall_ms = (time.perf_counter() - started) * 1000.0
        labels = {"task": task, "worker": slot}
        registry.gauge("worker.wall_ms", wall_ms, **labels)
        registry.gauge(
            "worker.mem_high_water_bytes",
            float(meter.high_water_bytes), **labels,
        )
        registry.gauge(
            "worker.mapped_peak_bytes",
            float(meter.mapped_high_water_bytes), **labels,
        )
        rss = rss_high_water_bytes()
        if rss is not None:
            registry.gauge("worker.rss_max_bytes", float(rss), **labels)
        registry.count("worker.tasks", 1, task=task)
        metrics_sidecar(root, task, slot).write_text(
            json.dumps(registry.snapshot())
        )
        return result
    finally:
        deactivate_meter()


# -------------------------------------------------------------- pair output

class PairResult(NamedTuple):
    """What a pair-producing kernel sends back instead of the pairs."""

    count: int
    checksum: int
    path: str


class StageOutput(NamedTuple):
    """Return value of a stage that both moves records and emits pairs."""

    moved: int
    pairs: PairResult


class PairSink:
    """Stream joined pairs into one mapped segment, checksumming as we go.

    The checksum is the simulator's ``PairCollector`` mix — summing
    per-batch and reducing once is equivalent to the per-pair running mod.
    """

    def __init__(self, path: Path, capacity: int) -> None:
        self.path = path
        # overwrite=True: a retried pass legally replaces the outputs a
        # failed attempt published; the segment stays a .tmp sibling
        # until close() renames it into place.
        self._file = PairsFile.create(path, max(1, capacity), overwrite=True)
        self.count = 0
        self.checksum = 0

    def emit_joined(self, r_objects: List[RObject], s_objects: List) -> None:
        """Join matched R/S batches positionally and stream the pairs."""
        pairs = [
            (r[0], s[0], r[2], s[1])
            for r, s in zip(r_objects, s_objects)
        ]
        if not pairs:
            return
        self._file.append_many(pairs)
        active().count("worker.pairs", len(pairs))
        self.count += len(pairs)
        self.checksum = (
            self.checksum
            + sum(p[0] * 1_000_003 + p[1] * 7919 + p[3] for p in pairs)
        ) % CHECKSUM_MOD

    def emit_arrays(self, rid, sid, r_payload, s_value) -> None:
        """Join matched column arrays positionally and stream the pairs.

        The vector-kernel counterpart of :meth:`emit_joined`: one
        ``(n, 4)`` u64 block is written into the mapped segment in a
        single append, and the checksum mix runs as wrapping u64
        arithmetic — exact, because ``CHECKSUM_MOD`` divides ``2**64``.
        """
        n = int(len(rid))
        if not n:
            return
        block = _np.empty((n, 4), dtype="<u8")
        block[:, 0] = rid
        block[:, 1] = sid
        block[:, 2] = r_payload
        block[:, 3] = s_value
        self._file.append_packed(memoryview(block).cast("B"))
        active().count("worker.pairs", n)
        self.count += n
        mix = (
            rid * _np.uint64(1_000_003)
            + sid * _np.uint64(7919)
            + s_value
        )
        self.checksum = (
            self.checksum + int(mix.sum(dtype=_np.uint64))
        ) % CHECKSUM_MOD

    def close(self) -> PairResult:
        """Publish the segment (atomic rename) and report its totals."""
        self._file.close()
        return PairResult(self.count, self.checksum, str(self.path))

    def abort(self) -> None:
        """Discard the sink without publishing (idempotent failure path)."""
        self._file.abort()


# -------------------------------------------------- artifact naming scheme

def pairs_name(label: str, partition: int, shard: Shard | None = None) -> str:
    """The PAIRS segment written by one worker of one pass.

    Shard tasks publish disjoint segments (``_s<k>`` suffix) so sibling
    shards of one partition never race on a name; the executor collects
    every segment, and the order-independent checksum makes the union
    bit-identical to the unsharded single segment.
    """
    base = f"PAIRS_{label}_{partition}"
    return base if shard is None else f"{base}_s{shard.index}"


def rs_name(target: int, contributor: int) -> str:
    """One contributor's range-partitioned spill for the sort-merge plan."""
    return f"RS{target}_from{contributor}"


def nl_spill_name(owner: int, partner: int) -> str:
    """Nested loops' pass-0 spill of ``owner``'s references to ``partner``."""
    return f"RP{owner}_{partner}"


def run_name(partition: int, run_id: int) -> str:
    """One sorted run cut by the sort-run stage."""
    return f"RUN{partition}_{run_id}"


def run_paths(store: Store, partition: int) -> List[Path]:
    """Every published run for ``partition``, in run-id order."""
    prefix = f"RUN{partition}_"
    paths = [
        path for path in store.disk_dir(partition).glob(f"{prefix}*.seg")
        if path.name[len(prefix):-len(".seg")].isdigit()
    ]
    paths.sort(key=lambda path: int(path.name[len(prefix):-len(".seg")]))
    return paths


def bucket_spill_name(
    target: int, contributor: int, chunk: int | None = None
) -> str:
    """One contributor's bucketed spill file for one target partition.

    ``chunk`` is set when the partition pass ran under a spill threshold
    and flushed its groups incrementally.
    """
    base = f"BS{target}_from{contributor}"
    return base if chunk is None else f"{base}_c{chunk}"


def bucket_spill_paths(
    store: Store, partition: int, contributor: int
) -> List[Path]:
    """One contributor's spill files for ``partition``, chunks included.

    The unchunked base file and any ``_c<n>`` chunks are all valid
    inputs; chunks are ordered numerically so probe input order is
    deterministic.
    """
    paths: List[Path] = []
    base = store.path(partition, bucket_spill_name(partition, contributor))
    if base.exists():
        paths.append(base)
    prefix = f"BS{partition}_from{contributor}_c"
    chunks = [
        path for path in store.disk_dir(partition).glob(f"{prefix}*.seg")
        if path.name[len(prefix):-len(".seg")].isdigit()
    ]
    chunks.sort(key=lambda path: int(path.name[len(prefix):-len(".seg")]))
    paths.extend(chunks)
    return paths


# ----------------------------------------------------------- batch utilities

def rebatch(iterable: Iterable, size: int) -> Iterator[List]:
    """Chunk any iterable into lists of at most ``size`` items."""
    batch: List = []
    for item in iterable:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def run_stream(path: Path) -> Iterator[RObject]:
    """Lazily stream one run file's objects (closable generator)."""
    rel = RRelationFile.open(path)
    try:
        yield from rel.iter_objects(BATCH_RECORDS)
    finally:
        rel.close()


def run_lower_bound(rel: RRelationFile, key: int) -> int:
    """Index of the first record in a sorted run with ``sptr >= key``.

    Binary search over the mapped records — O(log n) point reads — so a
    key-range shard starts reading at its own range instead of scanning
    (and discarding) the prefix owned by lower shards.
    """
    lo, hi = 0, len(rel)
    while lo < hi:
        mid = (lo + hi) // 2
        if rel.get(mid).sptr < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
