"""Per-partition size rebalancing for the pass-plan executor.

The paper's cost model makes *skew* — the largest partition relative to
the mean — the gating term of every synchronized algorithm: a pass ends
when its slowest task does.  This module is the executor's answer.  Just
before a rebalance-capable stage is dispatched, the inbound sizes every
partition is about to process are *measured* from the published
artifacts of the previous barrier (RS spill files, sorted runs, bucket
directories — all sized by a 32-byte header read or a directory scan,
never a data scan), and oversized partitions are split into
:class:`~repro.parallel.engine.task.Shard` tasks along the stage's
declared axis:

* ``"records"`` — positional ranges over the inbound record stream
  (sort-merge's run-formation pass, nested loops' spill-join pass);
* ``"keys"`` — sorted-pointer key ranges, equal-depth over a cheap CDF
  fitted to keys sampled from the partition's sorted runs (the
  learned-index trick: quantiles of a key sample are the range
  boundaries that make every shard the same depth);
* ``"buckets"`` — contiguous hash-bucket ranges, equal-depth over the
  *exact* per-bucket histogram read from the bucket directories (small
  "dustbin" buckets coalesce into shared ranges; hot buckets isolate).

Splitting never rewrites a file: shards read disjoint slices of the same
published inputs and publish disjoint outputs (``_s<k>``-suffixed PAIRS
segments, stride-namespaced run ids), so the union of shard outputs is
record-identical to the unsharded task's — the order-independent pair
checksum makes bit-identity checkable per pass.

The decision is a pure function of measured sizes and the plan's
``rebalance`` mode, so a retried or degraded round re-plans from the
same artifacts and lands on the same shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.parallel.engine.partition import cdf_quantiles, equal_depth_cuts
from repro.parallel.engine.task import (
    Shard,
    bucket_spill_paths,
    nl_spill_name,
    rs_name,
    run_paths,
)
from repro.storage.relation import BucketedRFile, RRelationFile
from repro.storage.segment import MappedSegment
from repro.storage.store import Store

#: The per-plan rebalance knob's legal values: ``"off"`` never shards,
#: ``"auto"`` shards only when the measured imbalance crosses
#: :data:`REBALANCE_RATIO`, ``"on"`` force-shards every non-empty
#: partition (the bit-identity proof mode).
REBALANCE_MODES = ("off", "auto", "on")

#: ``max(sizes) / mean(sizes)`` at or above which ``"auto"`` rebalances.
REBALANCE_RATIO = 1.5

#: Upper bound on shards per partition — more tasks than pool workers
#: buys nothing past small multiples.
REBALANCE_MAX_SHARDS = 8

#: Key-CDF sampling budget: at most this many runs per partition...
KEY_SAMPLE_RUNS = 8
#: ...and this many keys per sampled run.
KEY_SAMPLES_PER_RUN = 64

#: Open upper bound for the last key-range shard (sptrs are S indices,
#: always far below this).
KEY_SENTINEL = 1 << 63


class RebalanceError(ValueError):
    """Raised for an unknown rebalance mode or malformed stage wiring."""


def validate_rebalance_mode(mode: str) -> str:
    if mode not in REBALANCE_MODES:
        raise RebalanceError(
            f"unknown rebalance mode {mode!r}; choices: {REBALANCE_MODES}"
        )
    return mode


@dataclass
class StageRebalance:
    """One stage's rebalance decision plus the numbers behind it."""

    axis: str
    #: Measured inbound record count per partition.
    sizes: List[int]
    #: Per partition: the shard list (len >= 2) or None (run unsharded).
    shards: List[Optional[List[Shard]]]
    #: Estimated per-task record counts after sharding (unsharded
    #: partitions contribute their whole size).
    task_sizes: List[int]

    @property
    def splits(self) -> int:
        return sum(1 for s in self.shards if s)

    @property
    def sharded(self) -> bool:
        return self.splits > 0

    #: Records assigned to shards other than each split partition's
    #: first — the work "moved off" the task that used to gate the pass.
    moved_records: int = 0

    def report(self) -> dict:
        """The stats document's per-pass ``rebalance`` block."""
        total = sum(self.sizes)
        mean = total / max(1, len(self.sizes))
        pre_ratio = (max(self.sizes) / mean) if total else 1.0
        tasks = len(self.task_sizes)
        task_mean = total / max(1, tasks)
        post_ratio = (
            (max(self.task_sizes) / task_mean) if total and tasks else 1.0
        )
        return {
            "axis": self.axis,
            "splits": self.splits,
            "tasks": tasks,
            "moved_records": self.moved_records,
            "pre_ratio": round(pre_ratio, 4),
            "post_ratio": round(post_ratio, 4),
        }


def _shard_counts(
    sizes: List[int], mode: str, max_shards: int
) -> List[int]:
    """How many shards each partition should split into.

    ``auto`` splits proportionally to each partition's excess over the
    mean; ``on`` forces at least two shards per non-empty partition and
    doubles the proportional count, so even mild imbalance exercises the
    shard paths (and per-task sizes land near ``mean / 2``).
    """
    total = sum(sizes)
    if not total:
        return [1] * len(sizes)
    mean = total / len(sizes)
    counts = []
    for size in sizes:
        if not size:
            counts.append(1)
        elif mode == "on":
            counts.append(max(2, min(max_shards, round(2 * size / mean))))
        else:
            counts.append(max(1, min(max_shards, round(size / mean))))
    return counts


def plan_stage_rebalance(
    store: Store,
    stage,
    disks: int,
    mode: str,
    buckets: int,
    max_shards: int = REBALANCE_MAX_SHARDS,
) -> Optional[StageRebalance]:
    """Measure a stage's inbound sizes and decide its shards.

    Returns None when the stage is not rebalance-capable or the mode is
    ``"off"``; otherwise a :class:`StageRebalance` (possibly with zero
    splits — the stats document still records the measured ratio).
    """
    axis = getattr(stage, "rebalance", None)
    if axis is None or mode == "off":
        return None
    validate_rebalance_mode(mode)
    if axis == "records":
        sizes = _record_inbound_sizes(store, stage.kernel, disks)
        histograms = None
    elif axis == "keys":
        sizes = [
            sum(MappedSegment.record_count(p) for p in run_paths(store, i))
            for i in range(disks)
        ]
        histograms = None
    else:  # buckets
        histograms = [
            _bucket_histogram(store, i, disks, buckets) for i in range(disks)
        ]
        sizes = [sum(h) for h in histograms]

    total = sum(sizes)
    decision = StageRebalance(
        axis=axis, sizes=sizes, shards=[None] * disks, task_sizes=list(sizes)
    )
    if not total:
        return decision
    mean = total / disks
    if mode == "auto" and max(sizes) / mean < REBALANCE_RATIO:
        return decision

    counts = _shard_counts(sizes, mode, max_shards)
    shards: List[Optional[List[Shard]]] = []
    task_sizes: List[int] = []
    moved = 0
    for i in range(disks):
        part: Optional[List[Shard]] = None
        if counts[i] >= 2:
            if axis == "records":
                part = _record_shards(sizes[i], counts[i])
            elif axis == "keys":
                part = _key_shards(store, i, counts[i])
            else:
                part = _bucket_shards(histograms[i], counts[i])
            if not part or len(part) < 2:
                part = None
        shards.append(part)
        if part is None:
            task_sizes.append(sizes[i])
            continue
        if axis == "records":
            per_shard = [s.hi - s.lo for s in part]
        elif axis == "keys":
            # Equal-depth by construction; the exact counts are only
            # known after the shards run.
            per_shard = [sizes[i] // len(part)] * len(part)
        else:
            per_shard = [sum(histograms[i][s.lo:s.hi]) for s in part]
        task_sizes.extend(per_shard)
        moved += sizes[i] - per_shard[0]
    decision.shards = shards
    decision.task_sizes = task_sizes
    decision.moved_records = moved
    return decision


# ----------------------------------------------------------- measurement

def _record_inbound_sizes(store: Store, kernel: str, disks: int) -> List[int]:
    """Per-partition inbound record counts for a record-axis stage.

    The input files are the previous barrier's published spills; which
    ones feed which kernel is part of the artifact naming scheme
    (:mod:`repro.parallel.engine.task`), mirrored here.
    """
    sizes = []
    for i in range(disks):
        if kernel == "sort_merge_runs":
            paths = [
                store.path(i, rs_name(i, contributor))
                for contributor in range(disks)
            ]
        elif kernel == "nested_loops_pass1":
            paths = [
                store.path(i, nl_spill_name(i, (i + t) % disks))
                for t in range(1, disks)
            ]
        else:
            raise RebalanceError(
                f"no record-axis input enumeration for kernel {kernel!r}"
            )
        sizes.append(
            sum(
                MappedSegment.record_count(path)
                for path in paths
                if path.exists()
            )
        )
    return sizes


def _bucket_histogram(
    store: Store, partition: int, disks: int, buckets: int
) -> List[int]:
    """Exact per-bucket inbound counts from the bucket directories."""
    histogram = [0] * buckets
    for contributor in range(disks):
        for path in bucket_spill_paths(store, partition, contributor):
            rel = BucketedRFile.open(path)
            try:
                for bucket in range(min(buckets, rel.buckets)):
                    histogram[bucket] += rel.bucket_len(bucket)
            finally:
                rel.close()
    return histogram


# -------------------------------------------------------- shard geometry

def _record_shards(size: int, count: int) -> List[Shard]:
    """Equal positional slices of ``size`` records."""
    bounds = [size * k // count for k in range(count + 1)]
    shards = [
        (bounds[k], bounds[k + 1])
        for k in range(count)
        if bounds[k] < bounds[k + 1]
    ]
    return [
        Shard(index=k, count=len(shards), lo=lo, hi=hi)
        for k, (lo, hi) in enumerate(shards)
    ]


def _key_shards(store: Store, partition: int, count: int) -> List[Shard]:
    """Equal-depth key ranges from a CDF sampled over the sorted runs.

    Each run is already sorted by pointer key, so positionally-even
    samples per run are a stratified sample of the partition's key
    distribution; the pooled sample's quantiles are the equal-depth
    boundaries.  Duplicate boundaries (a single hot key spanning a
    quantile) collapse into fewer, wider shards rather than empty ones.
    """
    paths = run_paths(store, partition)
    if not paths:
        return []
    step = max(1, len(paths) // KEY_SAMPLE_RUNS)
    samples: List[int] = []
    for path in paths[::step][:KEY_SAMPLE_RUNS]:
        rel = RRelationFile.open(path)
        try:
            n = len(rel)
            if not n:
                continue
            take = min(KEY_SAMPLES_PER_RUN, n)
            for j in range(take):
                samples.append(rel.get(j * n // take).sptr)
        finally:
            rel.close()
    if not samples:
        return []
    samples.sort()
    boundaries = [0]
    for boundary in cdf_quantiles(samples, count):
        if boundary > boundaries[-1]:
            boundaries.append(boundary)
    boundaries.append(KEY_SENTINEL)
    return [
        Shard(
            index=k,
            count=len(boundaries) - 1,
            lo=boundaries[k],
            hi=boundaries[k + 1],
        )
        for k in range(len(boundaries) - 1)
    ]


def _bucket_shards(histogram: List[int], count: int) -> List[Shard]:
    """Equal-depth contiguous bucket ranges over the exact histogram.

    Cut placement is delegated to the shared global-CDF walk in
    :func:`repro.parallel.engine.partition.equal_depth_cuts` — the same
    helper the learned partitioner uses — so bucket sharding and key
    sharding round their tails identically.  Trailing empty buckets ride
    along with the final range; dustbin buckets (far below target depth)
    naturally coalesce into one shard.
    """
    total = sum(histogram)
    if not total or len(histogram) < 2:
        return []
    cuts = equal_depth_cuts(histogram, count)
    ranges: List[Tuple[int, int]] = list(zip(cuts, cuts[1:]))
    if len(ranges) < 2:
        return []
    return [
        Shard(index=k, count=len(ranges), lo=a, hi=b)
        for k, (a, b) in enumerate(ranges)
    ]
