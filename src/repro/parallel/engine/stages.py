"""Typed stages, declarative pass plans, and the algorithm registry.

A join algorithm on the real-mmap backend is a :class:`PassPlan`: a short
DAG (here, a linear chain — the paper's algorithms are all pass-barriered)
of typed stages, each naming the worker *kernel* that executes one
partition's share of that stage.  The stage types mirror the paper's
physical operators:

* :class:`ScanJoinStage` — scan R_i, join local references on the fly
  (nested loops' two passes);
* :class:`PartitionStage` — redistribute R by pointer target (sort-merge's
  range partition, Grace/hybrid's hash partition; hybrid additionally
  joins its resident buckets during the scan, so the stage can emit both
  moved records *and* pairs);
* :class:`SortRunStage` — cut a partition's inbound into sorted runs;
* :class:`MergeStage` — multi-way merge runs and join against S;
* :class:`ProbeStage` — per-bucket hash-table probe against S.

The executor (:mod:`repro.parallel.engine.executor`) never looks at the
algorithm name: it walks the stages, builds each worker's argument tuple
via :meth:`Stage.build_args`, and enforces the plan's
:class:`ConservationRule` set.  The governor's footprint model
(:mod:`repro.governor.predict`) walks the same stages, so prediction and
the degradation ladder extend to a new algorithm automatically when its
plan is registered.

This module is import-light on purpose — dataclasses and the registry
only, no storage or multiprocessing — so the governor can import plans
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Optional, Tuple, Union

#: How a stage's per-partition worker return value is interpreted.
#: ``"moved"`` — an int count of redistributed records; ``"pairs"`` — a
#: PairResult; ``"both"`` — a (moved, PairResult) StageOutput.
EMIT_KINDS = ("moved", "pairs", "both")

#: Axes the executor's rebalancer can split a stage's work along.
#: ``"records"`` — positional record ranges over the stage's inbound
#: files; ``"keys"`` — sorted-pointer key ranges (equal-depth over a
#: sampled key CDF); ``"buckets"`` — contiguous hash-bucket ranges
#: (equal-depth over the exact per-bucket histogram).
REBALANCE_AXES = ("records", "keys", "buckets")

#: Legal partitioning strategies a :class:`PartitionStage` may declare.
#: The implementations live in :mod:`repro.parallel.engine.partition`
#: (which imports this module, never the reverse — the names are
#: mirrored here so plan validation stays import-light); a test pins the
#: tuple against that module's registry.  ``"hash"`` is the paper's
#: order-preserving range hash, ``"radix"`` the cache-budgeted multi-pass
#: radix scatter, ``"learned"`` the equal-depth CDF model fit per run.
PARTITIONER_NAMES = ("hash", "radix", "learned")


class PassPlanError(ValueError):
    """Raised for malformed pass plans or stage wiring."""


@dataclass(frozen=True)
class StageContext:
    """Everything a stage needs to build worker argument tuples.

    One context per run; stages combine it with the current
    :class:`~repro.governor.predict.JoinPlan` (whose knobs change under
    degradation) and a partition index.
    """

    store_root: str
    disks: int
    s_objects: int
    r_bytes: int


@dataclass(frozen=True)
class Stage:
    """One pass of a join plan, executed once per partition.

    ``kernel`` names a worker function registered with
    :func:`repro.parallel.engine.task.register_kernel`; ``build_args``
    produces the positional argument tuple that kernel receives.  Every
    tuple must start ``(store_root, disks, partition, ...)`` — the engine
    task wrapper and the fault injector key off those three.
    """

    kind: ClassVar[str] = "stage"

    label: str
    kernel: str
    emits: str
    build_args: Callable = field(compare=False)
    #: The axis the executor may split this stage's per-partition work
    #: along when the inbound sizes are skewed (None — not splittable;
    #: the stage's kernel must understand the attached
    #: :class:`~repro.parallel.engine.task.Shard` for its axis).
    rebalance: Optional[str] = None

    def __post_init__(self) -> None:
        if self.emits not in EMIT_KINDS:
            raise PassPlanError(
                f"stage {self.label!r} emits {self.emits!r}; "
                f"choices: {EMIT_KINDS}"
            )
        if self.rebalance is not None and self.rebalance not in REBALANCE_AXES:
            raise PassPlanError(
                f"stage {self.label!r} rebalances along "
                f"{self.rebalance!r}; choices: {REBALANCE_AXES}"
            )

    def args_for(self, ctx: StageContext, plan, partition: int) -> tuple:
        args = self.build_args(ctx, plan, partition)
        if args[:3] != (ctx.store_root, ctx.disks, partition):
            raise PassPlanError(
                f"stage {self.label!r} built a malformed arg tuple; it "
                "must start (store_root, disks, partition)"
            )
        return args


@dataclass(frozen=True)
class ScanJoinStage(Stage):
    """Scan a base-R partition, joining pointer-local references on the fly.

    ``spills`` marks the pass that also writes RP spill files for remote
    references (nested loops pass 0); the footprint model charges the
    spill reservation only there.
    """

    kind: ClassVar[str] = "scan-join"

    spills: bool = False


@dataclass(frozen=True)
class PartitionStage(Stage):
    """Redistribute R records to their pointer-target partitions.

    ``buffered`` — the kernel retains bucket groups in memory across the
    scan (Grace/hybrid hash partitioning), so the governor's
    ``spill_threshold`` knob applies.  ``resident_join`` — the kernel
    joins its plan-designated resident buckets during the scan (hybrid
    hash), so the stage emits pairs as well as moved records and the
    ``resident_buckets`` knob applies.  ``partitioner`` — the strategy
    the kernel scatters buckets with (the plan's declared default; the
    governor's ``partitioner`` knob overrides it at run time).
    """

    kind: ClassVar[str] = "partition"

    buffered: bool = False
    resident_join: bool = False
    partitioner: str = "hash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.partitioner not in PARTITIONER_NAMES:
            raise PassPlanError(
                f"stage {self.label!r} partitions via "
                f"{self.partitioner!r}; choices: {PARTITIONER_NAMES}"
            )


@dataclass(frozen=True)
class SortRunStage(Stage):
    """Cut one partition's inbound records into sorted runs on disk."""

    kind: ClassVar[str] = "sort-run"


@dataclass(frozen=True)
class MergeStage(Stage):
    """Multi-way merge sorted runs and join against sequential S."""

    kind: ClassVar[str] = "merge"


@dataclass(frozen=True)
class ProbeStage(Stage):
    """Per-bucket hash-table probe of spilled R against S."""

    kind: ClassVar[str] = "probe"


@dataclass(frozen=True)
class ConservationRule:
    """Records in must equal records out across one or more stages.

    ``produced`` sums the named fields of the named stages' outcomes
    (field ``"moved"``, ``"pairs"`` or ``"total"`` = moved + pairs);
    ``expected`` is either the literal ``"input"`` (the workload's total R
    objects) or another ``(label, field)`` reference.  The executor checks
    a rule as soon as every stage it references has completed, so a
    corrupted redistribution fails before the next pass wastes work on it.
    """

    what: str
    produced: Tuple[Tuple[str, str], ...]
    expected: Union[str, Tuple[str, str]] = "input"


@dataclass(frozen=True)
class PassPlan:
    """One algorithm, declaratively: its stages and conservation laws."""

    algorithm: str
    stages: Tuple[Stage, ...]
    conservation: Tuple[ConservationRule, ...] = ()

    def __post_init__(self) -> None:
        if not self.stages:
            raise PassPlanError(f"{self.algorithm}: a plan needs stages")
        labels = [stage.label for stage in self.stages]
        if len(set(labels)) != len(labels):
            raise PassPlanError(
                f"{self.algorithm}: duplicate stage labels {labels}"
            )
        known = set(labels)
        for rule in self.conservation:
            refs = list(rule.produced)
            if isinstance(rule.expected, tuple):
                refs.append(rule.expected)
            for label, fld in refs:
                if label not in known:
                    raise PassPlanError(
                        f"{self.algorithm}: conservation rule {rule.what!r} "
                        f"references unknown stage {label!r}"
                    )
                if fld not in ("moved", "pairs", "total"):
                    raise PassPlanError(
                        f"{self.algorithm}: conservation rule {rule.what!r} "
                        f"references unknown field {fld!r}"
                    )

    def stage(self, label: str) -> Stage:
        for stage in self.stages:
            if stage.label == label:
                return stage
        raise PassPlanError(f"{self.algorithm}: no stage {label!r}")

    def has_kind(self, kind: str) -> bool:
        return any(stage.kind == kind for stage in self.stages)

    def tasks(self) -> Tuple[str, ...]:
        """Kernel names in pass order (the fault plan's coordinates)."""
        return tuple(stage.kernel for stage in self.stages)


# ------------------------------------------------------------- the registry

_PLANS: Dict[str, PassPlan] = {}


def register_plan(plan: PassPlan) -> PassPlan:
    """Register one algorithm's plan; the single point of extension."""
    if plan.algorithm in _PLANS:
        raise PassPlanError(f"algorithm {plan.algorithm!r} already registered")
    _PLANS[plan.algorithm] = plan
    return plan


def plan_for(algorithm: str) -> Optional[PassPlan]:
    """The registered plan for ``algorithm``, or None."""
    _ensure_builtin_plans()
    return _PLANS.get(algorithm)


def algorithms() -> Tuple[str, ...]:
    """Every registered algorithm, in registration order."""
    _ensure_builtin_plans()
    return tuple(_PLANS)


def _ensure_builtin_plans() -> None:
    # Self-healing registry: importing this module alone (e.g. from the
    # governor) must still see the built-in plans.
    if not _PLANS:
        from repro.parallel.engine import plans  # noqa: F401  (registers)
