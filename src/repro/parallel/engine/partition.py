"""The partitioner layer: pluggable bucket assignment for bucketed plans.

Grace and hybrid hash stand or fall on how R records are scattered to
their pointer-target partitions, yet that decision used to be smeared
across four layers — the scalar ``order_preserving_bucket`` in
:mod:`repro.joins.grace`, the scatter loops in
:mod:`repro.parallel.workers`, the argsort twins in
:mod:`repro.parallel.vectorized`, and a second equal-depth CDF in
:mod:`repro.parallel.engine.rebalance`.  This module is the single
abstraction they all call through: a :class:`Partitioner` maps a located
reference ``(target, offset)`` to a bucket, both one record at a time
(``bucket_of``) and over whole column batches (``bucket_array``), and
supplies the bucket-contiguous permutation (``order``) the vectorized
flush path groups with.

Three strategies are registered:

``hash``
    The paper's order-preserving range hash — a thin wrapper around
    ``order_preserving_bucket``, byte-identical to the pre-refactor
    output (same integer math scalar-side, same u64 expression and
    stable argsort vector-side).

``radix``
    A DPG-style cache-efficient scatter: buckets are the top bits of the
    local offset (still monotone in the offset, so the probe's
    sequential-S property holds), and the vectorized grouping runs as
    multiple stable passes over :data:`RADIX_BITS`-bit digits — each
    pass touches at most :data:`RADIX_FANOUT` output streams, a
    software-managed stand-in for keeping the scatter's working set
    inside one cache/TLB budget.

``learned``
    A monotone empirical-CDF model fit from sampled pointer keys before
    the partition pass runs.  Each record's offset is mapped to its
    interpolated *rank* in the sample and the rank to a bucket, so every
    bucket covers an equal-depth rank range — neutralizing zipf /
    partition_hot skew at partition time instead of post-hoc via
    rebalance shards.  A hot key owns a wide rank span; its records are
    spread uniformly across that span by ``mix(rid) % span`` — record
    ids are stable across retries and kernel modes, and pair correctness
    never depends on bucket assignment (every bucket's records are
    probed against the same S partition).

The learned model is *state*: the driver fits it once per run
(:func:`fit_learned_state`) and installs it into the store root as
``partitioner.json`` (:func:`install_partitioner_state`) — the same
files-only protocol as ``kernels.mode`` — so pool workers that forked
before the run began, and retried tasks after a fault, all see the
identical model.

Module-level imports stay light (stdlib + guarded numpy + stages), so
the governor can price partitioner scratch without dragging in storage.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import ClassVar, Dict, List, Optional, Sequence, Type

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.parallel.engine.stages import PARTITIONER_NAMES

#: Digit width of one vectorized radix pass; 2**RADIX_BITS output
#: streams per pass is the software-managed cache/TLB budget (64
#: streams ≈ one page-table walk set per pass, per the DPG framing).
RADIX_BITS = 6
RADIX_FANOUT = 1 << RADIX_BITS

#: Per-R-partition cap on pointer keys sampled when fitting the learned
#: CDF model (stride-sampled, so the sample spans the whole partition).
LEARNED_SAMPLES_PER_PARTITION = 2048

#: Store-root marker file carrying the fitted partitioner state across
#: process boundaries (same files-only protocol as ``kernels.mode``).
PARTITIONER_STATE = "partitioner.json"


class PartitionerError(ValueError):
    """Raised for unknown partitioners or missing/mismatched fit state."""


# ---------------------------------------------------------- CDF helpers
#
# The equal-depth splitting primitives the rebalancer's key- and
# bucket-shard planners both delegate to (rebalance.py used to carry
# two private reimplementations with different tail rounding); they
# live here because they are the same empirical-CDF trick the learned
# partitioner builds on.


def cdf_quantiles(sorted_samples: Sequence[int], count: int) -> List[int]:
    """``count - 1`` equal-depth boundaries over a sorted sample.

    Boundary ``k`` is the sample at rank ``k·n // count`` — an empirical
    CDF inverse at the equal-depth quantiles.  Duplicate boundaries are
    *kept*: a value spanning several quantiles encodes a heavy hitter.
    (The rebalancer's key-shard planner dedupes the returned list
    itself, since record ranges cannot share a boundary.)
    """
    if count <= 1 or not sorted_samples:
        return []
    n = len(sorted_samples)
    return [sorted_samples[min(n - 1, k * n // count)] for k in range(1, count)]


def equal_depth_cuts(weights: Sequence[int], count: int) -> List[int]:
    """Cut positions splitting ``weights`` into ≤ ``count`` equal-depth ranges.

    Returns ``[0, ..., len(weights)]`` — contiguous half-open ranges over
    the weight indices, cutting after index ``i`` once the cumulative
    weight crosses the next ``k/count`` fraction of the total.  A single
    index heavy enough to cross several fractions is never split (a
    bucket is atomic); the walk just swallows the crossed fractions and
    keeps cutting for the remainder, so a hot bucket costs one wide
    range rather than starving the tail.
    """
    total = sum(weights)
    if count <= 1 or total <= 0 or len(weights) < 2:
        return [0, len(weights)]
    cuts = [0]
    cum = 0
    k = 1
    for index, weight in enumerate(weights[:-1]):
        cum += weight
        crossed = False
        while k < count and cum * count >= k * total:
            k += 1
            crossed = True
        if crossed and index + 1 > cuts[-1]:
            cuts.append(index + 1)
        if k >= count:
            break
    cuts.append(len(weights))
    return cuts


# --------------------------------------------------------- radix passes


def radix_shift(part_size: int, buckets: int) -> int:
    """Smallest right shift mapping ``[0, part_size)`` into ``< buckets``."""
    shift = 0
    top = max(0, part_size - 1)
    while (top >> shift) >= buckets:
        shift += 1
    return shift


def radix_order(bucket, buckets: int):
    """Stable bucket-contiguous permutation via LSD counting passes.

    Each pass stable-sorts one :data:`RADIX_BITS`-bit digit of the bucket
    id, so no pass ever scatters into more than :data:`RADIX_FANOUT`
    output streams; composing the passes least-significant-first yields
    exactly a stable sort by bucket.  For ``buckets <= RADIX_FANOUT``
    (the governor's default geometry) this is a single pass whose
    permutation is identical to ``np.argsort(bucket, kind="stable")``.
    """
    n = len(bucket)
    order = _np.arange(n, dtype=_np.int64)
    if n == 0 or buckets <= 1:
        return order
    keys = bucket.astype(_np.uint64, copy=False)
    mask = _np.uint64(RADIX_FANOUT - 1)
    top = buckets - 1
    shift = 0
    while True:
        digit = (keys[order] >> _np.uint64(shift)) & mask
        order = order[_np.argsort(digit, kind="stable")]
        shift += RADIX_BITS
        if (top >> shift) == 0:
            return order


# ----------------------------------------------------- the partitioners


class Partitioner:
    """Maps located references ``(target, offset)`` to bucket ids.

    ``part_sizes[target]`` is the S-partition size the offsets index
    into; ``buckets`` the fan-out.  Implementations must keep the scalar
    and vectorized paths element-wise identical — a property test pins
    this for every registered strategy.
    """

    name: ClassVar[str] = ""
    #: Whether :func:`resolve_partitioner` requires installed fit state.
    requires_fit: ClassVar[bool] = False

    def __init__(
        self,
        part_sizes: Sequence[int],
        buckets: int,
        state: Optional[dict] = None,
    ) -> None:
        if buckets <= 0:
            raise PartitionerError(f"{self.name}: buckets must be positive")
        self.part_sizes = list(part_sizes)
        self.buckets = buckets
        self.state = state

    def bucket_of(self, target: int, offset: int, rid: int) -> int:
        raise NotImplementedError

    def bucket_array(self, parts, offs, rids):
        """u64 bucket ids for whole located-column batches."""
        raise NotImplementedError

    def order(self, bucket):
        """Stable bucket-contiguous permutation over a bucket column."""
        return radix_order(bucket, self.buckets)

    @classmethod
    def fit(cls, samples_by_target: Sequence[Sequence[int]], buckets: int) -> dict:
        """Fit run-scoped state from sampled offsets (stateless: ``{}``)."""
        return {"name": cls.name, "buckets": buckets}


class HashPartitioner(Partitioner):
    """The paper's order-preserving range hash (the pre-refactor path)."""

    name: ClassVar[str] = "hash"

    def __init__(self, part_sizes, buckets, state=None):
        super().__init__(part_sizes, buckets, state)
        # Late import: joins.grace pulls the sim-side error types; the
        # governor imports this module for pricing only and never
        # instantiates, so keep the module graph light.
        from repro.joins.grace import order_preserving_bucket

        self._bucket = order_preserving_bucket

    def bucket_of(self, target: int, offset: int, rid: int) -> int:
        return self._bucket(offset, self.part_sizes[target], self.buckets)

    def bucket_array(self, parts, offs, rids):
        sizes = _np.asarray(self.part_sizes, dtype=_np.uint64)[parts]
        return _np.minimum(
            offs * _np.uint64(self.buckets) // sizes,
            _np.uint64(self.buckets - 1),
        )

    def order(self, bucket):
        # Byte-identity contract: the exact permutation the pre-refactor
        # flush path used.
        return _np.argsort(bucket, kind="stable")


class RadixPartitioner(Partitioner):
    """Top-bits-of-offset buckets, grouped by cache-budgeted radix passes.

    ``offset >> shift`` with the per-target minimal shift is monotone in
    the offset — the order-preserving property Grace's probe chain
    relies on — while making bucket extraction a single shift and the
    vectorized grouping a sequence of bounded-fan-out passes.
    """

    name: ClassVar[str] = "radix"

    def __init__(self, part_sizes, buckets, state=None):
        super().__init__(part_sizes, buckets, state)
        self._shifts = [radix_shift(size, buckets) for size in self.part_sizes]

    def bucket_of(self, target: int, offset: int, rid: int) -> int:
        return min(offset >> self._shifts[target], self.buckets - 1)

    def bucket_array(self, parts, offs, rids):
        shifts = _np.asarray(self._shifts, dtype=_np.uint64)[parts]
        return _np.minimum(offs >> shifts, _np.uint64(self.buckets - 1))


class LearnedPartitioner(Partitioner):
    """Equal-depth buckets from a monotone empirical-CDF over sampled keys.

    ``state["model"][target]`` holds ``{"values", "cdf"}`` for that S
    partition's sample: the sorted *unique* offsets and the cumulative
    rank just below each (``cdf`` has one trailing entry — the sample
    size).  A record maps to the rank span its offset owns in the
    sample, a deterministic rank inside that span (``mix(rid) % span`` —
    a hot key's wide span spreads its records uniformly), and the rank
    to ``rank · buckets // total`` — so every bucket covers an
    equal-depth rank range, including through the middle of a heavy
    hitter.  Rank is monotone in the offset and the within-key spread is
    a function of the stable record id, so retries and both kernel modes
    agree record-by-record.
    """

    name: ClassVar[str] = "learned"
    requires_fit: ClassVar[bool] = True

    #: Fibonacci-hash multiplier for the within-span record spread.
    #: ``rid % span`` alone is biased: a hot key's record ids are
    #: roughly uniform over the whole scan, and when that range is not a
    #: multiple of the span the low residues are systematically heavier
    #: — mixing first makes the spread uniform to ~``span / 2**64``.
    _MIX = 0x9E3779B97F4A7C15
    _MASK = (1 << 64) - 1

    @classmethod
    def _mixed(cls, rid: int) -> int:
        h = (rid * cls._MIX) & cls._MASK
        return h ^ (h >> 32)

    def __init__(self, part_sizes, buckets, state=None):
        super().__init__(part_sizes, buckets, state)
        model = (state or {}).get("model")
        if model is None or len(model) != len(self.part_sizes):
            raise PartitionerError(
                "learned: fit state is missing the per-target CDF model"
            )
        self._values = [list(entry["values"]) for entry in model]
        self._cdf = [list(entry["cdf"]) for entry in model]
        for values, cdf in zip(self._values, self._cdf):
            if len(cdf) != len(values) + 1:
                raise PartitionerError("learned: malformed CDF model")
        if _np is not None:
            self._values_np = [
                _np.asarray(v, dtype=_np.uint64) for v in self._values
            ]
            self._cdf_np = [
                _np.asarray(c, dtype=_np.uint64) for c in self._cdf
            ]

    def _rank_to_bucket(self, rank: int, total: int) -> int:
        if not total:
            return 0
        return min(rank * self.buckets // total, self.buckets - 1)

    def bucket_of(self, target: int, offset: int, rid: int) -> int:
        values = self._values[target]
        cdf = self._cdf[target]
        lo = cdf[bisect_left(values, offset)]
        hi = cdf[bisect_right(values, offset)]
        rank = lo + self._mixed(rid) % max(1, hi - lo)
        return self._rank_to_bucket(rank, cdf[-1])

    def bucket_array(self, parts, offs, rids):
        out = _np.empty(len(offs), dtype=_np.uint64)
        buckets = _np.uint64(self.buckets)
        top = _np.uint64(self.buckets - 1)
        one = _np.uint64(1)
        for target in _np.unique(parts):
            mask = parts == target
            values = self._values_np[int(target)]
            cdf = self._cdf_np[int(target)]
            total = cdf[-1]
            if not total:
                out[mask] = 0
                continue
            offs_t = offs[mask]
            lo = cdf[_np.searchsorted(values, offs_t, side="left")]
            hi = cdf[_np.searchsorted(values, offs_t, side="right")]
            mixed = rids[mask].astype(_np.uint64) * _np.uint64(self._MIX)
            mixed = mixed ^ (mixed >> _np.uint64(32))
            rank = lo + mixed % _np.maximum(hi - lo, one)
            out[mask] = _np.minimum(rank * buckets // total, top)
        return out

    @classmethod
    def fit(cls, samples_by_target, buckets):
        model = []
        for samples in samples_by_target:
            ordered = sorted(samples)
            values: List[int] = []
            cdf: List[int] = []
            for rank, value in enumerate(ordered):
                if not values or value != values[-1]:
                    values.append(value)
                    cdf.append(rank)
            cdf.append(len(ordered))
            model.append({"values": values, "cdf": cdf})
        return {"name": cls.name, "buckets": buckets, "model": model}


# ------------------------------------------------------------- registry

_PARTITIONERS: Dict[str, Type[Partitioner]] = {}


def register_partitioner(cls: Type[Partitioner]) -> Type[Partitioner]:
    """Register one strategy; validates the class implements the protocol."""
    if not cls.name:
        raise PartitionerError(f"{cls.__name__}: partitioners need a name")
    if cls.name in _PARTITIONERS:
        raise PartitionerError(f"partitioner {cls.name!r} already registered")
    for method in ("bucket_of", "bucket_array", "order", "fit"):
        if not callable(getattr(cls, method, None)):
            raise PartitionerError(
                f"partitioner {cls.name!r} is missing {method}()"
            )
    _PARTITIONERS[cls.name] = cls
    return cls


register_partitioner(HashPartitioner)
register_partitioner(RadixPartitioner)
register_partitioner(LearnedPartitioner)

if tuple(_PARTITIONERS) != PARTITIONER_NAMES:  # pragma: no cover
    raise PartitionerError(
        f"registry {tuple(_PARTITIONERS)} does not match "
        f"stages.PARTITIONER_NAMES {PARTITIONER_NAMES}"
    )


def partitioner_names() -> tuple:
    """Every registered strategy, in registration order."""
    return tuple(_PARTITIONERS)


def partitioner_class(name: str) -> Type[Partitioner]:
    try:
        return _PARTITIONERS[name]
    except KeyError:
        raise PartitionerError(
            f"unknown partitioner {name!r}; choices: {tuple(_PARTITIONERS)}"
        ) from None


# ----------------------------------------------- run-scoped state files


def install_partitioner_state(store_root, state: dict) -> Path:
    """Publish fitted state into the store root for workers to load."""
    path = Path(store_root) / PARTITIONER_STATE
    path.write_text(json.dumps(state))
    return path


def load_partitioner_state(store_root) -> Optional[dict]:
    """The installed state, or None when no partitioner was fit."""
    path = Path(store_root) / PARTITIONER_STATE
    if not path.exists():
        return None
    try:
        state = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return state if isinstance(state, dict) else None


def sweep_partitioner_state(store_root) -> None:
    """Remove installed state (run teardown; idempotent)."""
    path = Path(store_root) / PARTITIONER_STATE
    try:
        path.unlink()
    except FileNotFoundError:
        pass


def resolve_partitioner(
    store_root, name: str, part_sizes: Sequence[int], buckets: int
) -> Partitioner:
    """Build the named strategy for a kernel, loading fit state if needed.

    Kernels call this once per task; a fitted strategy whose installed
    state is missing or was fit for a different geometry fails loudly —
    silently falling back to another strategy would break the
    scalar-vs-vector bit-identity contract mid-run.
    """
    cls = partitioner_class(name)
    if not cls.requires_fit:
        return cls(part_sizes, buckets)
    state = load_partitioner_state(store_root)
    if (
        state is None
        or state.get("name") != name
        or int(state.get("buckets", -1)) != buckets
    ):
        raise PartitionerError(
            f"partitioner {name!r} needs fitted state for buckets={buckets} "
            f"installed at <store>/{PARTITIONER_STATE}; found "
            f"{state and state.get('name')!r}"
        )
    return cls(part_sizes, buckets, state)


# ------------------------------------------------------------- fitting


def fit_learned_state(store, disks: int, s_objects: int, buckets: int) -> dict:
    """Fit the learned CDF model by stride-sampling R's pointer keys.

    Driver-side, before the partition pass: up to
    :data:`LEARNED_SAMPLES_PER_PARTITION` pointers per R partition,
    stride-sampled so the sample spans the partition, located to
    ``(target, offset)`` and pooled per target.
    """
    from repro.core.pointer import PointerMap

    pmap = PointerMap(s_objects=s_objects, partitions=disks)
    samples: List[List[int]] = [[] for _ in range(disks)]
    for i in range(disks):
        with store.open_r(i) as rel:
            n = len(rel)
            if not n:
                continue
            take = min(LEARNED_SAMPLES_PER_PARTITION, n)
            sptrs = [rel.get(j * n // take).sptr for j in range(take)]
        for target, offset in pmap.locate_many(sptrs):
            samples[target].append(offset)
    return LearnedPartitioner.fit(samples, buckets)


# ----------------------------------------------------- governor pricing


def partition_scratch_bytes(
    name: str, *, disks: int, buckets: int, batch: int, retained: float
) -> float:
    """Extra scratch a strategy needs beyond the hash baseline.

    ``radix`` — the permutation index plus digit lane over the retained
    flush blob, and one per-digit histogram per pass; ``learned`` — the
    per-target CDF model (values + ranks at the sampling cap) plus the
    per-batch rank/span/bucket lanes.  ``hash`` prices at zero: it *is*
    the baseline the partition stage's footprint already charges.
    """
    if name == "radix":
        return 16.0 * max(1.0, retained) + 8.0 * RADIX_FANOUT
    if name == "learned":
        return (
            16.0 * disks * LEARNED_SAMPLES_PER_PARTITION
            + 24.0 * max(1, batch)
        )
    return 0.0
