"""The built-in pass plans: each real join algorithm, declaratively.

One :func:`~repro.parallel.engine.stages.register_plan` call per
algorithm is the entire cost of adding it to the backend: the executor,
the governor's footprint model and degradation ladder, the fault plan
coordinates, the CLI choices and the stats schema all derive from the
plan.  Hybrid hash is the proof: it is the grace plan with the partition
stage swapped for the resident-joining kernel — no new orchestration, no
new probe code.

Worker argument tuples always start ``(store_root, disks, partition)``;
the remaining fields come from the :class:`~repro.governor.predict.
JoinPlan` knobs so a degraded re-plan changes worker behaviour with no
stage rewiring.
"""

from __future__ import annotations

from repro.parallel.engine.stages import (
    ConservationRule,
    MergeStage,
    PartitionStage,
    PassPlan,
    ProbeStage,
    ScanJoinStage,
    SortRunStage,
    register_plan,
)

NESTED_LOOPS = register_plan(PassPlan(
    algorithm="nested-loops",
    stages=(
        ScanJoinStage(
            label="pass0",
            kernel="nested_loops_pass0",
            emits="pairs",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects, ctx.r_bytes,
                plan.batch_records,
            ),
            spills=True,
        ),
        ScanJoinStage(
            label="pass1",
            kernel="nested_loops_pass1",
            emits="pairs",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects,
                plan.batch_records,
            ),
            rebalance="records",
        ),
    ),
    conservation=(
        ConservationRule(
            "pass0+pass1 pairs",
            (("pass0", "pairs"), ("pass1", "pairs")),
        ),
    ),
))

SORT_MERGE = register_plan(PassPlan(
    algorithm="sort-merge",
    stages=(
        PartitionStage(
            label="partition",
            kernel="sort_merge_partition",
            emits="moved",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects, ctx.r_bytes,
                plan.batch_records,
            ),
        ),
        SortRunStage(
            label="sort-runs",
            kernel="sort_merge_runs",
            emits="moved",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.r_bytes, plan.irun,
                plan.batch_records,
            ),
            rebalance="records",
        ),
        MergeStage(
            label="merge-join",
            kernel="sort_merge_merge_join",
            emits="pairs",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects, ctx.r_bytes,
                plan.batch_records,
            ),
            rebalance="keys",
        ),
    ),
    conservation=(
        ConservationRule(
            "partitioned records", (("partition", "moved"),), "input"
        ),
        ConservationRule(
            "sorted records",
            (("sort-runs", "moved"),), ("partition", "moved"),
        ),
        ConservationRule(
            "joined records",
            (("merge-join", "pairs"),), ("sort-runs", "moved"),
        ),
    ),
))

def _grace_plan(algorithm: str, partitioner: str) -> PassPlan:
    """The Grace plan family: one probe stage, a pluggable partitioner.

    The three registered variants differ *only* in the partition stage's
    declared strategy — the proof that a new partitioner is a pure
    registration.  A ``plan.partitioner`` knob override (CLI/env/ladder)
    beats the declared default at args-build time.
    """
    return PassPlan(
        algorithm=algorithm,
        stages=(
            PartitionStage(
                label="partition",
                kernel="grace_partition",
                emits="moved",
                build_args=lambda ctx, plan, i: (
                    ctx.store_root, ctx.disks, i, ctx.s_objects, ctx.r_bytes,
                    plan.buckets, plan.spill_threshold, plan.batch_records,
                    plan.partitioner or partitioner,
                ),
                buffered=True,
                partitioner=partitioner,
            ),
            ProbeStage(
                label="probe",
                kernel="grace_probe",
                emits="pairs",
                build_args=lambda ctx, plan, i: (
                    ctx.store_root, ctx.disks, i, ctx.s_objects, plan.buckets,
                    plan.tsize, plan.batch_records,
                ),
                rebalance="buckets",
            ),
        ),
        conservation=(
            ConservationRule(
                "partitioned records", (("partition", "moved"),), "input"
            ),
            ConservationRule(
                "probed records", (("probe", "pairs"),), ("partition", "moved")
            ),
        ),
    )


GRACE = register_plan(_grace_plan("grace", "hash"))
GRACE_RADIX = register_plan(_grace_plan("grace-radix", "radix"))
GRACE_LEARNED = register_plan(_grace_plan("grace-learned", "learned"))

HYBRID_HASH = register_plan(PassPlan(
    algorithm="hybrid-hash",
    stages=(
        PartitionStage(
            label="partition",
            kernel="hybrid_hash_partition",
            emits="both",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects, ctx.r_bytes,
                plan.buckets, plan.effective_resident_buckets(),
                plan.spill_threshold, plan.batch_records,
                plan.partitioner or "hash",
            ),
            buffered=True,
            resident_join=True,
        ),
        ProbeStage(
            label="probe",
            kernel="grace_probe",
            emits="pairs",
            build_args=lambda ctx, plan, i: (
                ctx.store_root, ctx.disks, i, ctx.s_objects, plan.buckets,
                plan.tsize, plan.batch_records,
            ),
            rebalance="buckets",
        ),
    ),
    conservation=(
        # Every scanned record either joined at home or spilled.
        ConservationRule(
            "partitioned records", (("partition", "total"),), "input"
        ),
        ConservationRule(
            "probed records", (("probe", "pairs"),), ("partition", "moved")
        ),
    ),
))
