"""The generic pass-plan executor for the real-mmap backend.

One function, :func:`execute_plan`, runs *any* registered
:class:`~repro.parallel.engine.stages.PassPlan` and owns everything the
old per-algorithm runner duplicated per pass:

* store lifecycle — orphan sweep, budget install, metrics marker, fault
  plan install, workload materialization, final artifact sweep/destroy;
* task fan-out — one :func:`~repro.parallel.engine.task.run_task` payload
  per partition per stage, dispatched to a shared
  :class:`multiprocessing.Pool` (or inline), futures drained with an
  optional timeout;
* recovery — a retry budget with exponential backoff, inline fallback
  when the pool is unrecoverable, and dirty-pool termination;
* governance — classified :class:`ResourceExhausted` failures end the
  round (drained, never retried) and descend one rung of the plan's
  degradation ladder before the round re-executes from clean temps;
* observability — per-stage spans, driver counters, worker sidecar
  harvest, disk high-water sampling;
* invariants — the plan's :class:`ConservationRule` set, each rule
  checked the moment every stage it references has completed.

Dispatch is recovery-aware.  Each stage submits one future per partition
(``apply_async``) and collects it with an optional ``task_timeout``; a
partition whose worker dies, raises, or fails to report in time is
retried — with exponential backoff — up to a configurable budget.
Retries are safe because every kernel's outputs are published atomically
(tmp-write / rename in the storage layer) and re-created with
``overwrite=True``, so a half-finished dead attempt leaves nothing a
retry can observe.  When the pool itself is unrecoverable (hung
workers), the still-failing partitions are run inline in the parent as a
last resort, and a pool that may still harbor abandoned tasks is
terminated rather than joined.

Resource exhaustion is governed, not retried: a classified
:class:`~repro.governor.errors.ResourceExhausted` out of a worker is
deterministic under the same plan, so the dispatcher lets it surface
immediately; under ``on_pressure="degrade"`` the executor descends one
rung (:meth:`~repro.governor.predict.JoinPlan.degraded`), resets the
round (temps cleared; stages are idempotent), and re-executes.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.pool
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.records import JoinedPair
from repro.governor.budget import install_budgets, store_usage_bytes
from repro.governor.errors import ResourceExhausted
from repro.governor.predict import JoinPlan
from repro.obs.registry import MetricsRegistry, activate, active, deactivate
from repro.obs.spans import span
from repro.parallel.engine.checkpoint import (
    CheckpointWriter,
    discard_manifest,
    load_manifest,
    validate_manifest,
    workload_signature,
)
from repro.parallel.engine.partition import (
    fit_learned_state,
    install_partitioner_state,
    partitioner_class,
    sweep_partitioner_state,
)
from repro.parallel.engine.rebalance import plan_stage_rebalance
from repro.parallel.engine.stages import PassPlan, Stage, StageContext
from repro.parallel.engine.task import (
    CHECKSUM_MOD,
    OBS_MARKER,
    PairResult,
    StageOutput,
    install_kernel_mode,
    metrics_sidecar,
    run_paths,
    run_task,
    sweep_kernel_mode,
    task_slot,
)
from repro.parallel.faults import (
    FaultPlan,
    InjectedHang,
    RetryPolicy,
    sweep_fault_state,
)
from repro.governor.budget import sweep_budgets
from repro.storage.relation import iter_pairs_file
from repro.storage.store import Store
from repro.workload.generator import Workload

#: Backoff between retry rounds never sleeps longer than this.
_BACKOFF_CAP_S = 2.0


class RealJoinError(RuntimeError):
    """Raised when the real backend cannot run a join."""


@dataclass
class ExecutionOutcome:
    """Everything one :func:`execute_plan` run produced and endured."""

    plan: JoinPlan
    pair_count: int = 0
    checksum: int = 0
    pairs: Optional[List[JoinedPair]] = None
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    pass_counts: Dict[str, int] = field(default_factory=dict)
    pass_checksums: Dict[str, int] = field(default_factory=dict)
    pass_kinds: Dict[str, str] = field(default_factory=dict)
    worker_metrics: Dict[str, Dict[object, dict]] = field(default_factory=dict)
    driver_metrics: Optional[dict] = None
    recovery: Dict[str, object] = field(default_factory=dict)
    #: Per-stage rebalance decisions (axis, splits, moved records,
    #: pre/post max-partition ratio) for the run's *final* round.
    rebalance: Dict[str, dict] = field(default_factory=dict)
    runtime_degradations: int = 0
    resource_errors: Dict[str, int] = field(default_factory=dict)
    disk_peak_bytes: int = 0
    #: Resume accounting (stats ``totals.resume``): whether a checkpoint
    #: manifest was replayed, how many completed passes it skipped, and
    #: how old it was; ``reason`` explains a declined resume.
    resume: Dict[str, object] = field(default_factory=dict)
    #: Integrity accounting (stats ``totals.integrity``): segments fully
    #: scrubbed (resume validation) and scrub failures encountered.
    integrity: Dict[str, int] = field(default_factory=dict)
    #: The published PAIRS segments (count, checksum, path per worker).
    #: Paths are only live while the store is (``keep_store=True``) — the
    #: join-service daemon streams them to clients straight from the
    #: mapped segments instead of materializing ``pairs``.
    pair_files: List[PairResult] = field(default_factory=list)


def sweep_run_artifacts(store_root: str, store: Store) -> None:
    """Remove every run-scoped control file from the store root.

    Called before a run (stale state from a previous dead driver) and on
    every exit path (nothing of a finished run may leak): the metrics
    marker, metrics sidecars, the fault plan and its attempt counters,
    the budget file, and unpublished ``*.seg.tmp`` segments.
    """
    root = Path(store_root)
    if not root.exists():
        return
    (root / OBS_MARKER).unlink(missing_ok=True)
    for sidecar in root.glob("metrics_*.json"):
        sidecar.unlink(missing_ok=True)
    sweep_fault_state(root)
    sweep_budgets(root)
    sweep_kernel_mode(root)
    sweep_partitioner_state(root)
    store.cleanup_orphans()


def plan_stage_units(
    store: Store,
    ctx: StageContext,
    stage: Stage,
    plan: JoinPlan,
    outcome: "ExecutionOutcome",
) -> List[tuple]:
    """One ``(slot, kernel_args)`` dispatch unit per task of ``stage``.

    The default is one unit per partition.  For a rebalance-capable
    stage under a plan whose ``rebalance`` mode allows it, the inbound
    sizes are measured (cheap header/directory reads of the previous
    barrier's published artifacts) and oversized partitions split into
    shard units along the stage's axis; the decision lands in
    ``outcome.rebalance[stage.label]``.
    """
    mode = getattr(plan, "rebalance", "off") or "off"
    decision = None
    if stage.rebalance is not None and mode != "off":
        decision = plan_stage_rebalance(
            store, stage, ctx.disks, mode, plan.buckets
        )
    units: List[tuple] = []
    for partition in range(ctx.disks):
        args = stage.args_for(ctx, plan, partition)
        shards = decision.shards[partition] if decision is not None else None
        if not shards:
            units.append((partition, args))
            continue
        if stage.kind == "sort-run":
            # Sharded run cutters must not sweep stale runs themselves —
            # a late-starting shard would delete a sibling's freshly
            # published run.  The driver clears the partition's stale
            # runs once, before any shard is dispatched.
            for stale in run_paths(store, partition):
                stale.unlink(missing_ok=True)
        for shard in shards:
            units.append((task_slot(partition, shard), args + (shard,)))
    if decision is not None:
        outcome.rebalance[stage.label] = decision.report()
    return units


def execute_plan(
    pass_plan: PassPlan,
    workload: Workload,
    store_root: str,
    plan: JoinPlan,
    *,
    use_processes: bool = True,
    pool: Optional[multiprocessing.pool.Pool] = None,
    collect_metrics: bool = True,
    collect_pairs: bool = True,
    keep_store: bool = False,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    on_pressure: str = "degrade",
    max_degradations: int = 8,
    governed: bool = False,
    worker_mem_budget: Optional[int] = None,
    disk_budget: Optional[int] = None,
    materialize: bool = True,
    resume: bool = False,
) -> ExecutionOutcome:
    """Run every stage of ``pass_plan`` across all partitions.

    The caller (the runner) owns admission: ``plan`` arrives already
    fitted to its budget.  This function owns everything from "touch the
    store" to "the store is swept" — including descending the ladder
    further when a runtime :class:`ResourceExhausted` proves the
    admission estimate optimistic.

    ``materialize=False`` promises the store already holds this exact
    workload's R/S partitions (a *warm* store kept by a previous
    ``keep_store=True`` run) and skips rewriting them — the join-service
    daemon's per-request saving.  Stale temps from the previous run are
    cleared so glob-driven consumers (run files, spill chunks) never see
    another plan's artifacts.
    """
    policy = policy or RetryPolicy()
    algorithm = pass_plan.algorithm
    disks = workload.disks
    spec = workload.spec
    ctx = StageContext(
        store_root=store_root,
        disks=disks,
        s_objects=spec.s_objects,
        r_bytes=spec.r_bytes,
    )
    # clean_orphans: this is the driver, the one place where no sibling
    # writer can be mid-publish, so stale *.seg.tmp from a previous dead
    # run are safe to sweep (live tmps are flock-protected regardless).
    store = Store(store_root, disks, clean_orphans=True)
    sweep_run_artifacts(store_root, store)

    # ---------------------------------------------------------- checkpoint
    # Resolve the resume request against the store's manifest before
    # anything is (re)materialized: a valid manifest proves the store
    # warm and hands back the completed stages; anything less falls
    # back to a fresh run — resume is an optimization, never a risk.
    signature = workload_signature(workload)
    resume_state = None
    resume_problem: Optional[str] = None
    scrub_failures = 0
    if resume:
        manifest = load_manifest(store_root)
        if manifest is None:
            resume_problem = "no checkpoint manifest in the store"
        else:
            resume_state, resume_problem, scrub_failures = validate_manifest(
                manifest, store, algorithm, signature,
                [stage.label for stage in pass_plan.stages],
            )
    if resume_state is None:
        # Fresh run (or declined resume): a stale manifest must not
        # describe the new run's artifacts.
        discard_manifest(store_root)
    else:
        # The recorded stages ran under the manifest's (possibly
        # degraded) plan; resuming under the caller's knobs instead
        # would break bit-identity with the uninterrupted run.
        plan = JoinPlan(**resume_state.plan)
    outcome = ExecutionOutcome(plan=plan)
    outcome.integrity = {
        "segments_scrubbed": (
            resume_state.segments_scrubbed if resume_state is not None else 0
        ),
        "scrub_failures": scrub_failures,
    }
    outcome.resume = {
        "requested": resume,
        "resumed": resume_state is not None,
        "passes_skipped": (
            len(resume_state.records) if resume_state is not None else 0
        ),
        "manifest_age_s": (
            resume_state.manifest_age_s if resume_state is not None else None
        ),
        "reason": resume_problem,
    }
    if resume_state is not None:
        outcome.runtime_degradations = resume_state.runtime_degradations
    checkpoint = CheckpointWriter(
        store_root, algorithm, signature,
        replayed=resume_state.records if resume_state is not None else None,
    )

    if worker_mem_budget is not None or disk_budget is not None:
        install_budgets(store_root, worker_mem_budget, disk_budget)
    # The marker, not an env var, carries the mode: pool workers fork
    # with a stale environment, and a degradation round may switch it.
    install_kernel_mode(store_root, plan.kernel_mode)
    recovery: Dict[str, object] = {
        "retries": 0, "timeouts": 0, "inline_fallbacks": 0,
        "pool_dirty": False,
    }
    outcome.recovery = recovery
    driver_registry: Optional[MetricsRegistry] = None
    owns_pool = False
    pair_results: List[PairResult] = []
    # Per-round stage outcomes feeding the conservation rules:
    # label -> {"moved": int, "pairs": int, "total": int}.
    stage_totals: Dict[str, Dict[str, int]] = {}
    checked_rules: set = set()
    # Stage labels replayed from the checkpoint manifest this round.
    replayed: set = set()

    def sample_disk() -> None:
        if governed:
            outcome.disk_peak_bytes = max(
                outcome.disk_peak_bytes, store_usage_bytes(store_root)
            )

    def harvest_metrics(stage: Stage, slots: Sequence) -> None:
        """Merge the stage's worker registry sidecars into the outcome."""
        if not collect_metrics:
            return
        snapshots: Dict[object, dict] = {}
        for slot in slots:
            sidecar = metrics_sidecar(store_root, stage.kernel, slot)
            if sidecar.exists():
                snapshots[slot] = json.loads(sidecar.read_text())
                sidecar.unlink()
        outcome.worker_metrics[stage.label] = snapshots

    def conserved(ref) -> int:
        label, fld = ref
        return stage_totals[label][fld]

    def check_conservation() -> None:
        """Fire every rule whose referenced stages have all completed."""
        for rule in pass_plan.conservation:
            if rule.what in checked_rules:
                continue
            refs = list(rule.produced)
            if isinstance(rule.expected, tuple):
                refs.append(rule.expected)
            if any(label not in stage_totals for label, _ in refs):
                continue
            produced = sum(conserved(ref) for ref in rule.produced)
            expected = (
                workload.r_objects_total
                if rule.expected == "input"
                else conserved(rule.expected)
            )
            checked_rules.add(rule.what)
            if produced != expected:
                raise RealJoinError(
                    f"{algorithm}: {rule.what} not conserved "
                    f"({produced} produced, {expected} expected)"
                )

    def run_stage(stage: Stage, current: JoinPlan) -> None:
        checkpoint.begin_stage(store)
        units = plan_stage_units(store, ctx, stage, current, outcome)
        with span("stage", algo=algorithm, label=stage.label, kind=stage.kind):
            results = _dispatch_stage(
                pool, stage, units, outcome.pass_wall_ms,
                policy, store_root, algorithm, recovery,
            )
        harvest_metrics(stage, [slot for slot, _args in units])
        sample_disk()
        moved = 0
        stage_pairs: List[PairResult] = []
        if stage.emits == "moved":
            moved = sum(results)
        elif stage.emits == "pairs":
            stage_pairs = list(results)
        else:  # both
            outputs = [StageOutput(*result) for result in results]
            moved = sum(output.moved for output in outputs)
            stage_pairs = [output.pairs for output in outputs]
        pairs_count = sum(result.count for result in stage_pairs)
        stage_totals[stage.label] = {
            "moved": moved,
            "pairs": pairs_count,
            "total": moved + pairs_count,
        }
        outcome.pass_kinds[stage.label] = stage.kind
        if stage.emits == "moved":
            outcome.pass_counts[stage.label] = moved
        elif stage.emits == "pairs":
            outcome.pass_counts[stage.label] = pairs_count
        else:
            outcome.pass_counts[stage.label] = moved + pairs_count
        if stage_pairs:
            outcome.pass_checksums[stage.label] = (
                sum(result.checksum for result in stage_pairs) % CHECKSUM_MOD
            )
            pair_results.extend(stage_pairs)
        check_conservation()
        # The stage barrier held and its invariants passed: checkpoint
        # the published artifacts so a crash from here on costs only the
        # passes that have not run yet.
        checkpoint.record_stage(
            store,
            label=stage.label,
            kind=stage.kind,
            wall_ms=outcome.pass_wall_ms[stage.label],
            count=outcome.pass_counts[stage.label],
            checksum=outcome.pass_checksums.get(stage.label),
            totals=stage_totals[stage.label],
            pair_files=stage_pairs,
            rebalance=outcome.rebalance.get(stage.label),
            plan=current.as_dict(),
            runtime_degradations=outcome.runtime_degradations,
        )

    def reset_round() -> None:
        """Wipe one failed round's partial state so the next is pristine.

        Temps (spills, runs, chunks, pairs) are re-created from R/S, so
        clearing them keeps a re-planned round from double-counting stale
        files written under the previous plan's knobs.  Fault attempt
        counters are deliberately *kept*: a one-shot injected fault must
        not re-fire in the degraded round.
        """
        outcome.pass_wall_ms.clear()
        outcome.pass_counts.clear()
        outcome.pass_checksums.clear()
        outcome.pass_kinds.clear()
        outcome.worker_metrics.clear()
        outcome.rebalance.clear()
        pair_results.clear()
        stage_totals.clear()
        checked_rules.clear()
        replayed.clear()
        # The manifest describes temps this reset is about to delete; a
        # crash between here and the next barrier must find no manifest.
        checkpoint.reset()
        for sidecar in Path(store_root).glob("metrics_*.json"):
            sidecar.unlink(missing_ok=True)
        store.cleanup_temps()
        store.cleanup_orphans()

    def install_partitioners(current: JoinPlan) -> None:
        """Fit and publish run-scoped partitioner state for this round.

        The learned strategy's CDF model is fit driver-side from the
        warm store (deterministic stride sampling, so a resumed or
        retried run refits the identical model) and installed as a
        marker file — like the kernel mode, an env var could neither
        reach forked pool workers nor change between degradation
        rounds.  Stateless strategies sweep any stale model instead.
        """
        # Walk the pass plan directly (not the registry): execute_plan
        # also runs ad-hoc unregistered plans in tests.
        name = None
        for stage in pass_plan.stages:
            declared = getattr(stage, "partitioner", None)
            if declared is not None:
                name = current.partitioner or declared
                break
        if name is not None and partitioner_class(name).requires_fit:
            install_partitioner_state(
                store_root,
                fit_learned_state(store, disks, spec.s_objects, current.buckets),
            )
        else:
            sweep_partitioner_state(store_root)

    try:
        if collect_metrics:
            (Path(store_root) / OBS_MARKER).touch()
            driver_registry = activate(MetricsRegistry())
        if resume_state is not None:
            # The manifest's scrub already proved R/S and every recorded
            # artifact byte-good; replay the completed stages' outcomes
            # and clear only the temps the manifest does *not* record —
            # partial outputs of the incomplete stage a glob-driven
            # consumer would otherwise double-count.
            for disk in range(disks):
                for path in store.temp_paths(disk):
                    rel = str(path.relative_to(store.root))
                    if rel not in resume_state.recorded_paths:
                        path.unlink(missing_ok=True)
            for record in resume_state.records:
                label = record["label"]
                replayed.add(label)
                outcome.pass_wall_ms[label] = float(record["wall_ms"])
                outcome.pass_counts[label] = int(record["count"])
                outcome.pass_kinds[label] = record["kind"]
                if record.get("checksum") is not None:
                    outcome.pass_checksums[label] = int(record["checksum"])
                if record.get("rebalance"):
                    outcome.rebalance[label] = record["rebalance"]
                stage_totals[label] = {
                    key: int(value)
                    for key, value in record["totals"].items()
                }
                pair_results.extend(
                    PairResult(
                        int(entry["count"]),
                        int(entry["checksum"]),
                        str(store.root / entry["path"]),
                    )
                    for entry in record["pair_files"]
                )
            check_conservation()
        elif materialize or resume:
            if resume:
                # A declined resume leaves a store nothing proved good —
                # possibly the very corruption that declined it.  Rebuild
                # R/S and start from zero temps; recomputation is the
                # price of not serving a rotten byte.
                store.cleanup_temps()
                for disk in range(disks):
                    for name in ("R", "S"):
                        store.path(disk, name).unlink(missing_ok=True)
            store.materialize(workload)
        else:
            for disk in range(disks):
                for name in ("R", "S"):
                    if not store.path(disk, name).exists():
                        raise RealJoinError(
                            f"materialize=False but {store.path(disk, name)} "
                            "is missing — the store is not warm"
                        )
            store.cleanup_temps()
        sample_disk()
        install_partitioners(plan)
        if fault_plan is not None:
            fault_plan.install(store_root)
        if pool is None and use_processes and disks > 1:
            owns_pool = True
            pool = multiprocessing.Pool(processes=disks)
        elif not use_processes:
            pool = None

        current = plan
        while True:
            try:
                for stage in pass_plan.stages:
                    if stage.label in replayed:
                        continue
                    run_stage(stage, current)
                break
            except ResourceExhausted as error:
                outcome.resource_errors[error.resource] = (
                    outcome.resource_errors.get(error.resource, 0) + 1
                )
                active().count(
                    "runner.resource_errors_total", 1,
                    algo=algorithm, resource=error.resource,
                )
                lowered = current.degraded(algorithm, error.resource)
                if (
                    on_pressure != "degrade"
                    or outcome.runtime_degradations >= max_degradations
                    or lowered == current
                ):
                    raise
                current = lowered
                outcome.runtime_degradations += 1
                active().count(
                    "runner.degradations_total", 1, algo=algorithm
                )
                reset_round()
                install_kernel_mode(store_root, current.kernel_mode)
                install_partitioners(current)
        outcome.plan = current
        # A completed run needs no resume; a surviving manifest on a
        # warm store would wrongly skip the *next* join's passes.
        discard_manifest(store_root)

        if collect_pairs:
            pairs: List[JoinedPair] = []
            for result in pair_results:
                # Streamed a batch at a time: only the final list (which
                # the caller asked for) is whole-output, never a second
                # per-file materialization on top of it.
                pairs.extend(iter_pairs_file(result.path, current.batch_records))
            outcome.pairs = pairs
    finally:
        if driver_registry is not None:
            deactivate()
        if owns_pool and pool is not None:
            if recovery["pool_dirty"]:
                # Abandoned (hung or crashed mid-task) workers would block
                # close()+join() forever; this pool is ours, so kill it.
                pool.terminate()
            else:
                pool.close()
            pool.join()
        # The run's control files must not outlive the run — success or
        # failure.  Order matters: only after the pool is gone is no
        # worker left that could still be writing a sidecar or a .tmp.
        sweep_run_artifacts(store_root, store)
        if not keep_store:
            store.destroy()

    outcome.pair_count = sum(result.count for result in pair_results)
    outcome.checksum = (
        sum(result.checksum for result in pair_results) % CHECKSUM_MOD
    )
    outcome.pair_files = list(pair_results)
    outcome.driver_metrics = (
        driver_registry.snapshot() if driver_registry is not None else None
    )
    return outcome


def _dispatch_stage(
    pool,
    stage: Stage,
    units: Sequence[tuple],
    pass_wall: Dict[str, float],
    policy: RetryPolicy,
    store_root: str,
    algorithm: str,
    recovery: dict,
) -> list:
    """Dispatch one stage's units (tasks), retrying failed ones.

    ``units`` is the ``(slot, kernel_args)`` list from
    :func:`plan_stage_units` — one per partition, or one per shard where
    the rebalancer split a partition.  Every task gets ``1 +
    policy.retries`` attempts (plus one optional inline-fallback attempt
    in the parent).  Between rounds the dispatcher backs off
    exponentially.  Retrying is safe because kernel outputs are only
    published by atomic rename and re-created with overwrite, so a
    failed attempt's partial work is invisible to its retry.

    Classified :class:`ResourceExhausted` failures are *not* retried —
    under the same plan the same budget trips deterministically — they
    propagate to the executor's degradation loop instead.
    """
    started = time.perf_counter()
    results: list = [None] * len(units)
    pending = list(range(len(units)))
    errors: List[BaseException] = []
    labels = {"algo": algorithm, "pass": stage.label}
    for attempt in range(policy.retries + 1):
        if not pending:
            break
        if attempt:
            recovery["retries"] += len(pending)
            active().count("runner.retries_total", len(pending), **labels)
            time.sleep(
                min(policy.backoff_s * (2 ** (attempt - 1)), _BACKOFF_CAP_S)
            )
        pending = _run_round(
            pool, stage, units, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending and pool is not None and policy.fallback_inline:
        # Graceful degradation: the pool could not finish these tasks
        # within budget (it may be unrecoverable); run them in-process.
        recovery["inline_fallbacks"] += len(pending)
        active().count("runner.inline_fallbacks_total", len(pending), **labels)
        pending = _run_round(
            None, stage, units, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending:
        slots = [units[idx][0] for idx in pending]
        raise RealJoinError(
            f"{algorithm} {stage.label}: tasks {slots} failed "
            f"{stage.kernel} after {policy.retries + 1} attempt(s)"
        ) from (errors[-1] if errors else None)
    pass_wall[stage.label] = (time.perf_counter() - started) * 1000.0
    return results


def _run_round(
    pool,
    stage: Stage,
    units: Sequence[tuple],
    indices: List[int],
    results: list,
    policy: RetryPolicy,
    store_root: str,
    recovery: dict,
    errors: List[BaseException],
    labels: Dict[str, str],
) -> List[int]:
    """Run one attempt for each pending task; return the still-failing set.

    A :class:`ResourceExhausted` ends the round: inline it raises at once;
    in pool mode the remaining futures are *drained first* (so no sibling
    task of this round is still running when the executor re-plans and
    re-dispatches — an abandoned attempt publishing over its replacement
    would corrupt the degraded round) and the first classified error is
    then raised.
    """
    task = stage.kernel
    for idx in indices:
        # A dead attempt may have left a sidecar snapshotted before its
        # fault fired (or a stale one from a previous run); drop it so
        # the harvest only ever sees the attempt that actually finished.
        metrics_sidecar(store_root, task, units[idx][0]).unlink(
            missing_ok=True
        )
    still: List[int] = []
    if pool is not None:
        futures = [
            (idx, pool.apply_async(run_task, ((task, units[idx][1]),)))
            for idx in indices
        ]
        resource_error: Optional[ResourceExhausted] = None
        for idx, future in futures:
            try:
                results[idx] = future.get(policy.task_timeout)
            except multiprocessing.TimeoutError:
                # The worker died mid-task (its result will never arrive)
                # or is hung; either way the pool now holds an abandoned
                # task, so it can no longer be join()ed safely.
                recovery["timeouts"] += 1
                recovery["pool_dirty"] = True
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(
                    TimeoutError(
                        f"{task} task {units[idx][0]} exceeded "
                        f"{policy.task_timeout}s"
                    )
                )
                still.append(idx)
            except ResourceExhausted as error:
                if resource_error is None:
                    resource_error = error
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
        if resource_error is not None:
            raise resource_error
    else:
        for idx in indices:
            try:
                results[idx] = run_task((task, units[idx][1]))
            except ResourceExhausted:
                raise
            except InjectedHang as error:
                # Inline stand-in for a task timeout: counted as one, so
                # the timeout/retry path is testable without processes.
                recovery["timeouts"] += 1
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(error)
                still.append(idx)
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
    return still
