"""Pass-pipeline execution engine for the real-mmap backend.

Algorithms are declarative :class:`PassPlan` DAGs of typed stages; one
generic executor (:mod:`repro.parallel.engine.executor`) runs them all.
This package deliberately does *not* import the executor here — the
governor imports plans/stages for footprint prediction, and pulling the
executor (multiprocessing, storage) along with them would re-create the
import cycles the split exists to avoid.
"""

from repro.parallel.engine.stages import (
    ConservationRule,
    MergeStage,
    PartitionStage,
    PassPlan,
    PassPlanError,
    ProbeStage,
    ScanJoinStage,
    SortRunStage,
    Stage,
    StageContext,
    algorithms,
    plan_for,
    register_plan,
)
from repro.parallel.engine import plans  # noqa: F401  (registers built-ins)
from repro.parallel.engine.task import (
    BATCH_RECORDS,
    CHECKSUM_MOD,
    OBS_MARKER,
    PairResult,
    PairSink,
    StageOutput,
    bucket_spill_name,
    bucket_spill_paths,
    metrics_sidecar,
    pairs_name,
    rebatch,
    register_kernel,
    resolve_kernel,
    run_name,
    run_paths,
    run_stream,
    run_task,
)

__all__ = [
    "BATCH_RECORDS",
    "CHECKSUM_MOD",
    "ConservationRule",
    "MergeStage",
    "OBS_MARKER",
    "PairResult",
    "PairSink",
    "PartitionStage",
    "PassPlan",
    "PassPlanError",
    "ProbeStage",
    "ScanJoinStage",
    "SortRunStage",
    "Stage",
    "StageContext",
    "StageOutput",
    "algorithms",
    "bucket_spill_name",
    "bucket_spill_paths",
    "metrics_sidecar",
    "pairs_name",
    "plan_for",
    "rebatch",
    "register_kernel",
    "register_plan",
    "resolve_kernel",
    "run_name",
    "run_paths",
    "run_stream",
    "run_task",
]
