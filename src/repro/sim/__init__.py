"""Discrete simulation of the paper's memory-mapped multiprocessor testbed.

This package stands in for the hardware the paper measured (a Sequent
Symmetry with Fujitsu drives): per-process virtual clocks, mechanical disks
whose access cost depends on arm movement, demand-paged memory with
pluggable replacement, µDatabase-style segments, and the shared G-buffer
protocol between R and S processes.  See DESIGN.md for the substitution
argument.
"""

from repro.sim.disk import DiskGeometry, SimDisk
from repro.sim.errors import (
    DiskError,
    MemoryError_,
    SegmentError,
    SimulationError,
)
from repro.sim.machine import SimConfig, SimMachine
from repro.sim.mapper import MappingCosts, SegmentMapper
from repro.sim.memory import PagedMemory
from repro.sim.process import SimProcess
from repro.sim.replacement import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.sim.segment import Region, SimSegment, carve_regions, region_capacity_with_alignment
from repro.sim.sharedbuf import GBufferChannel
from repro.sim.stats import DiskStats, MachineStats, MemoryStats
from repro.sim.trace import (
    AccessEvent,
    TraceRecorder,
    attach_recorder,
    detach_recorder,
    fault_profile,
    render_fault_strip,
)

__all__ = [
    "AccessEvent",
    "ClockPolicy",
    "DiskError",
    "DiskGeometry",
    "DiskStats",
    "FifoPolicy",
    "GBufferChannel",
    "LruPolicy",
    "MachineStats",
    "MappingCosts",
    "MemoryError_",
    "MemoryStats",
    "PagedMemory",
    "Region",
    "ReplacementPolicy",
    "SegmentError",
    "SegmentMapper",
    "SimConfig",
    "SimDisk",
    "SimMachine",
    "SimProcess",
    "SimSegment",
    "SimulationError",
    "TraceRecorder",
    "attach_recorder",
    "carve_regions",
    "detach_recorder",
    "fault_profile",
    "make_policy",
    "region_capacity_with_alignment",
    "render_fault_strip",
]
