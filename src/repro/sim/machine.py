"""The assembled simulated machine: disks, mapper, processes and constants.

:class:`SimConfig` mirrors the constant part of the analytical model's
:class:`~repro.model.parameters.MachineParameters` — context-switch time,
memory transfer rates and per-operation CPU costs — plus the mechanical
descriptions (disk geometry, mapping costs) from which the model's measured
curves *emerge*.  :func:`calibrated_machine_parameters` in the harness
closes the loop: it measures dttr/dttw and the mapping curves on a machine
built from a config and returns the matching ``MachineParameters``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.sim.disk import DiskGeometry, SimDisk
from repro.sim.errors import SimulationError
from repro.sim.mapper import MappingCosts, SegmentMapper
from repro.sim.process import SimProcess
from repro.sim.segment import SimSegment
from repro.sim.stats import MachineStats


@dataclass(frozen=True)
class SimConfig:
    """All constants of the simulated machine.

    The CPU-side defaults are identical to the analytical model's defaults
    so that model and experiment describe the same machine by construction.
    """

    page_size: int = 4096
    disks: int = 4
    context_switch_ms: float = 0.2
    mt_pp_ms_per_byte: float = 1.0e-4
    mt_ps_ms_per_byte: float = 1.5e-4
    mt_sp_ms_per_byte: float = 1.5e-4
    mt_ss_ms_per_byte: float = 2.0e-4
    map_ms: float = 0.002
    hash_ms: float = 0.004
    compare_ms: float = 0.004
    swap_ms: float = 0.006
    transfer_ms: float = 0.003
    heap_pointer_bytes: int = 8
    replacement_policy: str = "lru"
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    mapping_costs: MappingCosts = field(default_factory=MappingCosts)

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise SimulationError("page_size must be positive")
        if self.disks <= 0:
            raise SimulationError("disks must be positive")

    def with_disks(self, disks: int) -> "SimConfig":
        return replace(self, disks=disks)

    def with_policy(self, policy: str) -> "SimConfig":
        return replace(self, replacement_policy=policy)


class SimMachine:
    """A shared-memory multiprocessor with D disk controllers."""

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self.stats = MachineStats()
        self.disks: List[SimDisk] = [
            SimDisk(
                disk_id=i,
                geometry=self.config.disk_geometry,
                stats=self.stats.disk_stats(i),
            )
            for i in range(self.config.disks)
        ]
        self.mapper = SegmentMapper(
            costs=self.config.mapping_costs, page_size=self.config.page_size
        )
        self._processes: dict[str, SimProcess] = {}

    # ------------------------------------------------------------ processes

    def create_process(
        self, name: str, frames: int, policy: str | None = None
    ) -> SimProcess:
        """Create a simulated process with its own page-frame pool."""
        if name in self._processes:
            raise SimulationError(f"process {name!r} already exists")
        process = SimProcess(
            name=name,
            machine=self,
            frames=frames,
            policy=policy or self.config.replacement_policy,
        )
        self._processes[name] = process
        return process

    def process(self, name: str) -> SimProcess:
        try:
            return self._processes[name]
        except KeyError:
            raise SimulationError(f"no process named {name!r}") from None

    @property
    def processes(self) -> List[SimProcess]:
        return list(self._processes.values())

    # ------------------------------------------------------------- segments

    def new_segment(
        self, name: str, disk_id: int, capacity_objects: int, object_bytes: int
    ) -> SimSegment:
        """newMap: a fresh segment over newly acquired disk space."""
        self.stats.map_operations += 1
        return self.mapper.new_map(
            name, self.disks[disk_id], capacity_objects, object_bytes
        )

    def open_segment(self, segment: SimSegment) -> SimSegment:
        """openMap: charge the cost of re-mapping an existing segment."""
        self.stats.map_operations += 1
        return self.mapper.open_map(segment)

    def delete_segment(self, segment: SimSegment) -> None:
        """deleteMap: destroy a segment and its data."""
        self.stats.map_operations += 1
        for process in self._processes.values():
            process.memory.drop_segment(segment, discard=True)
        self.mapper.delete_map(segment)

    def recycle_segment(self, segment: SimSegment) -> None:
        """deleteMap + newMap over the same area (sort-merge area swap).

        The sort-merge algorithm swaps its source and destination areas
        between merge passes by destroying the consumed mapping and creating
        a fresh one in place; the data becomes demand-zero again and the
        mapper charges both operations.
        """
        self.stats.map_operations += 2
        for process in self._processes.values():
            process.memory.drop_segment(segment, discard=True)
        segment.initialized_pages.clear()
        self.mapper.setup_ms += self.mapper.costs.delete_map_ms(segment.n_pages)
        self.mapper.setup_ms += self.mapper.costs.new_map_ms(segment.n_pages)

    def load_base_segment(
        self,
        name: str,
        disk_id: int,
        objects: list,
        object_bytes: int,
    ) -> SimSegment:
        """Materialize a base relation that already exists on disk.

        The loading itself is free — the relation predates the join — but
        the segment's pages are marked initialized so the first access of
        each page faults and pays real read I/O.  The newMap charge incurred
        while building is cancelled; joins charge openMap when they start.
        """
        before = self.mapper.setup_ms
        segment = self.mapper.new_map(name, self.disks[disk_id], len(objects), object_bytes)
        self.mapper.setup_ms = before
        for index, obj in enumerate(objects):
            segment.poke(index, obj)
        segment.mark_all_initialized()
        return segment

    # -------------------------------------------------------------- elapsed

    def flush_all_disks(self) -> float:
        """Drain every write-behind queue; returns the total time."""
        return sum(disk.flush() for disk in self.disks)

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time so far: slowest process plus serial setup."""
        clocks = [p.clock_ms for p in self._processes.values()]
        return (max(clocks) if clocks else 0.0) + self.mapper.setup_ms
