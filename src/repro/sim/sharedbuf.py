"""The shared G-buffer protocol between an Rproc and an Sproc.

When an Rproc needs S-objects it does not dereference them itself — the
owning Sproc reads them (faulting its own memory) and copies them into a
shared buffer of size G.  Requests are batched: the Rproc fills the buffer
with R-objects and their extracted S-pointers until only room for the
matching S-objects remains, then hands the buffer over (one context switch)
and receives it back filled (a second context switch).

This is the paper's section 5.1 optimization, and the batching is what the
``g(h) = 2 * CS * ceil(h / (G/(r+sptr+s)))`` term of the analysis charges.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.sim.errors import SimulationError
from repro.sim.process import SimProcess
from repro.sim.segment import SimSegment


class GBufferChannel:
    """Batched S-object lookups from one Rproc through one Sproc."""

    def __init__(
        self,
        rproc: SimProcess,
        sproc: SimProcess,
        s_segment: SimSegment,
        g_bytes: int,
        r_bytes: int,
        sptr_bytes: int,
        s_bytes: int,
    ) -> None:
        if g_bytes <= 0:
            raise SimulationError("G buffer must have positive size")
        self.rproc = rproc
        self.sproc = sproc
        self.s_segment = s_segment
        self.join_tuple_bytes = r_bytes + sptr_bytes + s_bytes
        self.r_bytes = r_bytes
        self.sptr_bytes = sptr_bytes
        self.s_bytes = s_bytes
        self.batch_capacity = max(1, g_bytes // self.join_tuple_bytes)
        self._pending: List[Tuple[Any, int]] = []
        self.batches_flushed = 0

    def request(
        self,
        r_object: Any,
        s_offset: int,
        deliver: Callable[[Any, Any], None],
    ) -> None:
        """Queue a lookup; ``deliver(r_object, s_object)`` runs at flush.

        The R-object and its copied S-pointer are placed into the shared
        buffer now (an MTps transfer by the Rproc); the S-object arrives
        when the batch flushes.
        """
        self.rproc.transfer_to_shared(self.r_bytes + self.sptr_bytes)
        self._pending.append((r_object, s_offset))
        if len(self._pending) >= self.batch_capacity:
            self._flush(deliver)

    def flush(self, deliver: Callable[[Any, Any], None]) -> None:
        """Flush a partial batch (end of a phase or pass)."""
        if self._pending:
            self._flush(deliver)

    def _flush(self, deliver: Callable[[Any, Any], None]) -> None:
        # Hand the buffer to the Sproc and back: two context switches,
        # charged to the waiting Rproc (stats count them once).
        self.rproc.context_switch(2)

        # The Sproc dereferences each pointer (faulting Si as needed) and
        # copies the object into the buffer.  The exchange is synchronous:
        # the Sproc cannot start before the request arrives, and the Rproc
        # blocks until the reply, so the two clocks rendezvous around the
        # service interval.
        self.sproc.sync_to(self.rproc.clock_ms)
        for _, s_offset in self._pending:
            self.sproc.read(self.s_segment, s_offset)
            self.sproc.transfer_to_shared(self.s_bytes)
        self.rproc.sync_to(self.sproc.clock_ms)

        for r_object, s_offset in self._pending:
            s_object = self.s_segment.peek(s_offset)
            deliver(r_object, s_object)
        self._pending.clear()
        self.batches_flushed += 1
