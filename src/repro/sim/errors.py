"""Exception types for the simulated memory-mapped environment."""


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class SegmentError(SimulationError):
    """Segment addressing or capacity violation."""


class DiskError(SimulationError):
    """Disk addressing violation."""


class MemoryError_(SimulationError):
    """Paged-memory misconfiguration (name avoids the builtin)."""
