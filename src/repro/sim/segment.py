"""Segments: the unit of memory mapping in the simulated single-level store.

A segment models one µDatabase-style memory-mapped area: a contiguous range
of blocks on one disk holding fixed-size objects that never straddle page
boundaries ("exact positioning of data").  The simulator keeps the objects
in a plain Python list — what matters for the model is *which pages* an
algorithm touches and in what order, and the list preserves exactly that
via the index-to-page mapping.

A :class:`Region` is a sub-range of a segment with its own append cursor;
the join algorithms use regions for sub-partitions (``RPi,j``), the merge
areas, and the Grace buckets (``BSi,j``).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.sim.disk import SimDisk
from repro.sim.errors import SegmentError


class SimSegment:
    """A mapped area of ``n_pages`` pages on one disk."""

    def __init__(
        self,
        segment_id: int,
        name: str,
        disk: SimDisk,
        start_block: int,
        capacity_objects: int,
        object_bytes: int,
        page_size: int,
    ) -> None:
        if capacity_objects < 0:
            raise SegmentError("segment capacity cannot be negative")
        if object_bytes <= 0 or object_bytes > page_size:
            raise SegmentError(
                f"object size {object_bytes} must be in (0, page_size]"
            )
        self.segment_id = segment_id
        self.name = name
        self.disk = disk
        self.start_block = start_block
        self.object_bytes = object_bytes
        self.page_size = page_size
        self.objects_per_page = max(1, page_size // object_bytes)
        self.capacity_objects = capacity_objects
        self.n_pages = self._pages_needed(capacity_objects)
        self._data: List[Any] = [None] * capacity_objects
        # Pages with real content on disk; demand-zero pages are absent.
        self.initialized_pages: set[int] = set()

    def _pages_needed(self, objects: int) -> int:
        if objects == 0:
            return 1
        return -(-objects // self.objects_per_page)  # ceil division

    # ------------------------------------------------------------ addressing

    def page_of(self, index: int) -> int:
        """Page number (within the segment) holding object ``index``."""
        self._check_index(index)
        return index // self.objects_per_page

    def block_of_page(self, page: int) -> int:
        """Absolute disk block backing segment page ``page``."""
        if not 0 <= page < self.n_pages:
            raise SegmentError(
                f"page {page} outside segment {self.name!r} ({self.n_pages} pages)"
            )
        return self.start_block + page

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity_objects:
            raise SegmentError(
                f"object index {index} outside segment {self.name!r} "
                f"(capacity {self.capacity_objects})"
            )

    # ------------------------------------------------------------- raw data

    def peek(self, index: int) -> Any:
        """Read object content without any cost accounting (tests only)."""
        self._check_index(index)
        return self._data[index]

    def poke(self, index: int, value: Any) -> None:
        """Write object content without any cost accounting.

        Used by the workload loader to materialize base relations; callers
        must mark the affected pages initialized via
        :meth:`mark_all_initialized` (or the machine helper) afterwards.
        """
        self._check_index(index)
        self._data[index] = value

    def mark_all_initialized(self) -> None:
        """Declare every page as having real on-disk content."""
        self.initialized_pages.update(range(self.n_pages))

    def iter_objects(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Any]:
        """Cost-free iteration over stored objects (tests and verification)."""
        stop = self.capacity_objects if stop is None else stop
        return iter(self._data[start:stop])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimSegment({self.name!r}, disk={self.disk.disk_id}, "
            f"start={self.start_block}, pages={self.n_pages})"
        )


class Region:
    """A sub-range of a segment with its own append cursor.

    The algorithms' temporary areas are sub-partitioned: ``RPi`` holds one
    region per remote partition, ``RSi`` one per contributing process (or
    per Grace bucket).  A region tracks how many objects it holds so passes
    can iterate exactly the written prefix.
    """

    def __init__(self, segment: SimSegment, start: int, capacity: int, label: str = "") -> None:
        if start < 0 or capacity < 0 or start + capacity > segment.capacity_objects:
            raise SegmentError(
                f"region [{start}, {start + capacity}) outside segment "
                f"{segment.name!r} (capacity {segment.capacity_objects})"
            )
        self.segment = segment
        self.start = start
        self.capacity = capacity
        self.label = label
        self.count = 0

    def next_index(self) -> int:
        """Segment index the next append will occupy."""
        if self.count >= self.capacity:
            raise SegmentError(
                f"region {self.label or self.start} of {self.segment.name!r} "
                f"overflow (capacity {self.capacity})"
            )
        return self.start + self.count

    def commit_append(self) -> None:
        self.count += 1

    def indices(self) -> range:
        """Segment indices of the objects appended so far."""
        return range(self.start, self.start + self.count)

    @property
    def is_empty(self) -> bool:
        return self.count == 0


def carve_regions(
    segment: SimSegment, capacities: list[int], labels: list[str] | None = None
) -> list[Region]:
    """Split a segment into consecutive regions of the given capacities.

    Each region is aligned to a page boundary so appends to different
    regions never share a page — mirroring the on-disk sub-partition layout
    where each ``RPi,j`` occupies its own run of blocks.
    """
    labels = labels or [str(i) for i in range(len(capacities))]
    if len(labels) != len(capacities):
        raise SegmentError("labels and capacities must have equal length")
    per_page = segment.objects_per_page
    regions: list[Region] = []
    cursor = 0
    for capacity, label in zip(capacities, labels):
        # Align the start up to a page boundary.
        if cursor % per_page:
            cursor += per_page - (cursor % per_page)
        regions.append(Region(segment, cursor, capacity, label=label))
        cursor += capacity
    if cursor > segment.capacity_objects:
        raise SegmentError(
            f"regions need {cursor} objects but segment {segment.name!r} "
            f"holds {segment.capacity_objects}"
        )
    return regions


def region_capacity_with_alignment(
    capacities: list[int], objects_per_page: int
) -> int:
    """Total segment capacity needed to carve the given aligned regions."""
    cursor = 0
    for capacity in capacities:
        if cursor % objects_per_page:
            cursor += objects_per_page - (cursor % objects_per_page)
        cursor += capacity
    return cursor
