"""Counters collected while a join executes on the simulated machine.

The paper validates its model against measured elapsed time, but it also
reasons about page faults, I/O volume and context switches; these counters
expose the same quantities so tests can check mechanism-level agreement
(e.g. measured S-partition faults vs. the Mackert–Lohman prediction).

The dataclasses here are the simulator's native (and long-stable) counter
API; :func:`machine_stats_registry` adapts one :class:`MachineStats` onto
the unified :class:`~repro.obs.MetricsRegistry` so simulator runs export
the same versioned stats document as the real-mmap backend (the ``sim.*``
counter namespace in ``docs/metrics_schema.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.registry import MetricsRegistry


@dataclass
class DiskStats:
    """Per-disk I/O counters."""

    blocks_read: int = 0
    blocks_written: int = 0
    read_ms: float = 0.0
    write_ms: float = 0.0
    flushes: int = 0

    @property
    def blocks_total(self) -> int:
        return self.blocks_read + self.blocks_written


@dataclass
class MemoryStats:
    """Per-process paged-memory counters."""

    accesses: int = 0
    faults: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.faults / self.accesses


@dataclass
class MachineStats:
    """Aggregated machine-wide counters for one simulated run."""

    context_switches: int = 0
    bytes_moved_private: int = 0
    bytes_moved_shared: int = 0
    map_operations: int = 0
    cpu_map_calls: int = 0
    cpu_hash_calls: int = 0
    heap_compares: int = 0
    heap_swaps: int = 0
    heap_transfers: int = 0
    disk: Dict[int, DiskStats] = field(default_factory=dict)
    memory: Dict[str, MemoryStats] = field(default_factory=dict)

    def disk_stats(self, disk_id: int) -> DiskStats:
        return self.disk.setdefault(disk_id, DiskStats())

    def memory_stats(self, process_name: str) -> MemoryStats:
        return self.memory.setdefault(process_name, MemoryStats())

    @property
    def total_blocks_read(self) -> int:
        return sum(d.blocks_read for d in self.disk.values())

    @property
    def total_blocks_written(self) -> int:
        return sum(d.blocks_written for d in self.disk.values())

    @property
    def total_faults(self) -> int:
        return sum(m.faults for m in self.memory.values())

    def summary(self) -> str:
        return (
            f"blocks read={self.total_blocks_read:,} "
            f"written={self.total_blocks_written:,} "
            f"faults={self.total_faults:,} "
            f"context switches={self.context_switches:,}"
        )


def machine_stats_registry(stats: MachineStats) -> MetricsRegistry:
    """Adapt one run's :class:`MachineStats` onto the unified registry.

    Every native counter keeps its meaning; the names gain the ``sim.``
    prefix and per-disk / per-process labels, so merged documents stay
    distinguishable from the real backend's ``storage.*`` counters.
    """
    registry = MetricsRegistry()
    registry.count("sim.context_switches", stats.context_switches)
    registry.count("sim.bytes_moved", stats.bytes_moved_private, scope="private")
    registry.count("sim.bytes_moved", stats.bytes_moved_shared, scope="shared")
    registry.count("sim.map_operations", stats.map_operations)
    registry.count("sim.cpu.map_calls", stats.cpu_map_calls)
    registry.count("sim.cpu.hash_calls", stats.cpu_hash_calls)
    registry.count("sim.heap.compares", stats.heap_compares)
    registry.count("sim.heap.swaps", stats.heap_swaps)
    registry.count("sim.heap.transfers", stats.heap_transfers)
    for disk_id, disk in sorted(stats.disk.items()):
        registry.count("sim.disk.blocks_read", disk.blocks_read, disk=disk_id)
        registry.count("sim.disk.blocks_written", disk.blocks_written, disk=disk_id)
        registry.count("sim.disk.read_ms", disk.read_ms, disk=disk_id)
        registry.count("sim.disk.write_ms", disk.write_ms, disk=disk_id)
        registry.count("sim.disk.flushes", disk.flushes, disk=disk_id)
    for process_name, memory in sorted(stats.memory.items()):
        registry.count("sim.memory.accesses", memory.accesses, process=process_name)
        registry.count("sim.memory.faults", memory.faults, process=process_name)
        registry.count("sim.memory.evictions", memory.evictions, process=process_name)
        registry.count(
            "sim.memory.dirty_evictions",
            memory.dirty_evictions,
            process=process_name,
        )
    return registry
