"""Counters collected while a join executes on the simulated machine.

The paper validates its model against measured elapsed time, but it also
reasons about page faults, I/O volume and context switches; these counters
expose the same quantities so tests can check mechanism-level agreement
(e.g. measured S-partition faults vs. the Mackert–Lohman prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DiskStats:
    """Per-disk I/O counters."""

    blocks_read: int = 0
    blocks_written: int = 0
    read_ms: float = 0.0
    write_ms: float = 0.0
    flushes: int = 0

    @property
    def blocks_total(self) -> int:
        return self.blocks_read + self.blocks_written


@dataclass
class MemoryStats:
    """Per-process paged-memory counters."""

    accesses: int = 0
    faults: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.faults / self.accesses


@dataclass
class MachineStats:
    """Aggregated machine-wide counters for one simulated run."""

    context_switches: int = 0
    bytes_moved_private: int = 0
    bytes_moved_shared: int = 0
    map_operations: int = 0
    cpu_map_calls: int = 0
    cpu_hash_calls: int = 0
    heap_compares: int = 0
    heap_swaps: int = 0
    heap_transfers: int = 0
    disk: Dict[int, DiskStats] = field(default_factory=dict)
    memory: Dict[str, MemoryStats] = field(default_factory=dict)

    def disk_stats(self, disk_id: int) -> DiskStats:
        return self.disk.setdefault(disk_id, DiskStats())

    def memory_stats(self, process_name: str) -> MemoryStats:
        return self.memory.setdefault(process_name, MemoryStats())

    @property
    def total_blocks_read(self) -> int:
        return sum(d.blocks_read for d in self.disk.values())

    @property
    def total_blocks_written(self) -> int:
        return sum(d.blocks_written for d in self.disk.values())

    @property
    def total_faults(self) -> int:
        return sum(m.faults for m in self.memory.values())

    def summary(self) -> str:
        return (
            f"blocks read={self.total_blocks_read:,} "
            f"written={self.total_blocks_written:,} "
            f"faults={self.total_faults:,} "
            f"context switches={self.context_switches:,}"
        )
