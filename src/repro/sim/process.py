"""Simulated processes: virtual clocks plus charged object access.

A :class:`SimProcess` owns a private paged memory and a virtual clock.
Every object access charges the clock with whatever the memory/disk stack
reports; CPU work (mapping a pointer to its partition, hashing, heap
operations) and memory-to-memory transfers are charged explicitly with the
machine's measured constants, mirroring the cost terms of the paper's
analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.errors import SimulationError
from repro.sim.memory import PagedMemory
from repro.sim.segment import Region, SimSegment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import SimMachine


class SimProcess:
    """One process (Rproc or Sproc) with private memory and a clock."""

    def __init__(
        self, name: str, machine: "SimMachine", frames: int, policy: str = "lru"
    ) -> None:
        self.name = name
        self.machine = machine
        self.clock_ms = 0.0
        self.memory = PagedMemory(
            frames=frames,
            policy=policy,
            stats=machine.stats.memory_stats(name),
        )

    # --------------------------------------------------------------- clock

    def advance(self, ms: float) -> None:
        if ms < 0:
            raise SimulationError(f"cannot advance clock by {ms} ms")
        self.clock_ms += ms

    def sync_to(self, ms: float) -> None:
        """Barrier: wait until the given moment (used between phases)."""
        if ms > self.clock_ms:
            self.clock_ms = ms

    # -------------------------------------------------------------- access

    def read(self, segment: SimSegment, index: int) -> Any:
        """Read one object, charging any page-fault I/O to this clock."""
        self.advance(self.memory.access(segment, segment.page_of(index), write=False))
        return segment.peek(index)

    def write(self, segment: SimSegment, index: int, value: Any) -> None:
        """Write one object in place, dirtying its page."""
        self.advance(self.memory.access(segment, segment.page_of(index), write=True))
        segment.poke(index, value)

    def append(self, region: Region, value: Any) -> int:
        """Append one object to a region; returns its segment index."""
        index = region.next_index()
        self.write(region.segment, index, value)
        region.commit_append()
        return index

    def flush(self, segment: SimSegment | None = None) -> None:
        """Write back this process's dirty pages (pass-boundary cleanup)."""
        self.advance(self.memory.flush(segment))

    # ----------------------------------------------------------------- CPU

    def charge_map(self, count: int = 1) -> None:
        """Pointer-to-partition computation (the paper's ``map``)."""
        self.machine.stats.cpu_map_calls += count
        self.advance(count * self.machine.config.map_ms)

    def charge_hash(self, count: int = 1) -> None:
        """One application of a hash function (the paper's ``hash``)."""
        self.machine.stats.cpu_hash_calls += count
        self.advance(count * self.machine.config.hash_ms)

    def charge_compare(self, count: int = 1) -> None:
        self.machine.stats.heap_compares += count
        self.advance(count * self.machine.config.compare_ms)

    def charge_swap(self, count: int = 1) -> None:
        self.machine.stats.heap_swaps += count
        self.advance(count * self.machine.config.swap_ms)

    def charge_heap_transfer(self, count: int = 1) -> None:
        self.machine.stats.heap_transfers += count
        self.advance(count * self.machine.config.transfer_ms)

    # ------------------------------------------------------------ transfers

    def transfer_private(self, n_bytes: int) -> None:
        """Private-to-private move inside this process's segment (MTpp)."""
        self.machine.stats.bytes_moved_private += n_bytes
        self.advance(n_bytes * self.machine.config.mt_pp_ms_per_byte)

    def transfer_to_shared(self, n_bytes: int) -> None:
        """Private-to-shared move for cross-process hand-off (MTps)."""
        self.machine.stats.bytes_moved_shared += n_bytes
        self.advance(n_bytes * self.machine.config.mt_ps_ms_per_byte)

    def transfer_from_shared(self, n_bytes: int) -> None:
        """Shared-to-private move (MTsp)."""
        self.machine.stats.bytes_moved_shared += n_bytes
        self.advance(n_bytes * self.machine.config.mt_sp_ms_per_byte)

    def context_switch(self, count: int = 1) -> None:
        self.machine.stats.context_switches += count
        self.advance(count * self.machine.config.context_switch_ms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimProcess({self.name!r}, clock={self.clock_ms:.1f} ms)"
