"""Access tracing: observe the paging behaviour the paper reasons about.

The paper's hardest modelling problems — LRU evicting still-useful pages in
the sort-merge merge passes (§6.2), premature bucket-page replacement in
Grace pass 0 (§7.3) — are statements about *access patterns*.  This module
records them: a :class:`TraceRecorder` attached to a
:class:`~repro.sim.memory.PagedMemory` captures one event per page access,
and :func:`fault_profile` / :func:`render_fault_strip` summarize the stream
into the kind of evidence the paper argues from.

Tracing is strictly opt-in (attach/detach) and adds nothing to untraced
runs.

:func:`trace_registry` adapts a recorded stream onto the unified
:class:`~repro.obs.MetricsRegistry` (the ``sim.trace.*`` namespace), so a
traced simulator run can fold its access-pattern evidence into the same
stats document the real backend exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional

from repro.obs.registry import MetricsRegistry
from repro.sim.memory import PagedMemory
from repro.sim.segment import SimSegment


class AccessEvent(NamedTuple):
    """One page access, in program order."""

    sequence: int
    segment_name: str
    page: int
    write: bool
    fault: bool
    evicted_segment: Optional[str]  # victim's segment, if an eviction happened
    evicted_dirty: bool


@dataclass
class TraceRecorder:
    """Collects :class:`AccessEvent` streams from one paged memory."""

    events: List[AccessEvent] = field(default_factory=list)
    _sequence: int = 0

    def record(
        self,
        segment: SimSegment,
        page: int,
        write: bool,
        fault: bool,
        evicted_segment: Optional[str],
        evicted_dirty: bool,
    ) -> None:
        self.events.append(
            AccessEvent(
                sequence=self._sequence,
                segment_name=segment.name,
                page=page,
                write=write,
                fault=fault,
                evicted_segment=evicted_segment,
                evicted_dirty=evicted_dirty,
            )
        )
        self._sequence += 1

    # ------------------------------------------------------------ summaries

    @property
    def access_count(self) -> int:
        return len(self.events)

    @property
    def fault_count(self) -> int:
        return sum(1 for e in self.events if e.fault)

    def faults_by_segment(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            if event.fault:
                out[event.segment_name] = out.get(event.segment_name, 0) + 1
        return out

    def premature_refaults(self, segment_name: str) -> int:
        """Pages of one segment faulted again after having been resident.

        This is exactly the paper's "premature replacement" count: a page
        that was in memory, got evicted, and was needed again.
        """
        seen: set[int] = set()
        refaults = 0
        for event in self.events:
            if event.segment_name != segment_name or not event.fault:
                continue
            if event.page in seen:
                refaults += 1
            seen.add(event.page)
        return refaults


def trace_registry(recorder: TraceRecorder) -> MetricsRegistry:
    """Summarize one access trace as unified ``sim.trace.*`` counters.

    Exposes the quantities the paper argues from: accesses and faults per
    segment, plus each segment's premature refaults (pages evicted while
    still useful — the LRU pathology of §6.2/§7.3).
    """
    registry = MetricsRegistry()
    registry.count("sim.trace.accesses", recorder.access_count)
    registry.count("sim.trace.faults", recorder.fault_count)
    segments = {event.segment_name for event in recorder.events}
    faults_by_segment = recorder.faults_by_segment()
    for name in sorted(segments):
        registry.count(
            "sim.trace.segment_faults", faults_by_segment.get(name, 0), segment=name
        )
        registry.count(
            "sim.trace.premature_refaults",
            recorder.premature_refaults(name),
            segment=name,
        )
    return registry


def attach_recorder(memory: PagedMemory) -> TraceRecorder:
    """Wrap a paged memory's ``access`` so every call is recorded.

    Returns the recorder; call :func:`detach_recorder` to restore the
    original method.
    """
    recorder = TraceRecorder()
    original = memory.access

    def traced_access(segment: SimSegment, page: int, write: bool = False) -> float:
        faults_before = memory.stats.faults
        evictions_before = memory.stats.evictions
        dirty_before = memory.stats.dirty_evictions
        cost = original(segment, page, write)
        recorder.record(
            segment=segment,
            page=page,
            write=write,
            fault=memory.stats.faults > faults_before,
            evicted_segment="?" if memory.stats.evictions > evictions_before else None,
            evicted_dirty=memory.stats.dirty_evictions > dirty_before,
        )
        return cost

    memory.access = traced_access  # type: ignore[method-assign]
    memory._trace_original_access = original  # type: ignore[attr-defined]
    return recorder


def detach_recorder(memory: PagedMemory) -> None:
    """Restore an un-traced ``access`` method."""
    original = getattr(memory, "_trace_original_access", None)
    if original is not None:
        memory.access = original  # type: ignore[method-assign]
        del memory._trace_original_access


def fault_profile(
    recorder: TraceRecorder, buckets: int = 60
) -> List[float]:
    """Fault rate over time: the fraction of faulting accesses per slice."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    events = recorder.events
    if not events:
        return [0.0] * buckets
    per_bucket = max(1, len(events) // buckets)
    profile = []
    for start in range(0, len(events), per_bucket):
        window = events[start : start + per_bucket]
        profile.append(sum(1 for e in window if e.fault) / len(window))
    return profile[:buckets]


def render_fault_strip(recorder: TraceRecorder, width: int = 60) -> str:
    """A one-line heat strip of the fault rate over program time.

    ``' '`` means no faults in the slice, ``'#'`` means every access
    faulted — a quick visual of thrashing phases.
    """
    shades = " .:-=+*#"
    profile = fault_profile(recorder, buckets=width)
    chars = []
    for rate in profile:
        index = min(len(shades) - 1, int(rate * (len(shades) - 1) + 0.5))
        chars.append(shades[index])
    return "".join(chars)
