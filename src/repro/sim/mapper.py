"""Memory-mapping setup: the simulated newMap / openMap / deleteMap.

The paper models three mapping operations with measured, linearly-growing
costs (Figure 1b): creating a mapping over new disk space is the most
expensive (page-table construction *and* disk-space acquisition), opening
an existing mapping pays only the page-table construction, and deleting
pays only the tear-down.  The mapper charges mechanical per-page and
per-block costs, so measuring total cost against mapping size reproduces
the figure's three lines — and the fitted lines feed the analytical model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.sim.disk import SimDisk
from repro.sim.errors import SegmentError
from repro.sim.segment import SimSegment


@dataclass(frozen=True)
class MappingCosts:
    """Per-unit mechanical costs of mapping manipulation, milliseconds.

    Defaults reproduce the paper's Figure 1b slopes for 4K blocks:
    ``newMap ~ 0.94 ms/block``, ``openMap ~ 0.63 ms/block``,
    ``deleteMap ~ 0.23 ms/block``.
    """

    base_ms: float = 2.0                 # fixed syscall overhead
    page_table_entry_ms: float = 0.625   # build one page-table entry
    block_acquire_ms: float = 0.3125     # acquire one block of disk space
    page_free_ms: float = 0.234          # tear down one entry / free a block

    def new_map_ms(self, n_pages: int) -> float:
        return self.base_ms + n_pages * (
            self.page_table_entry_ms + self.block_acquire_ms
        )

    def open_map_ms(self, n_pages: int) -> float:
        return self.base_ms + n_pages * self.page_table_entry_ms

    def delete_map_ms(self, n_pages: int) -> float:
        return self.base_ms + n_pages * self.page_free_ms


class SegmentMapper:
    """Creates, opens and deletes simulated segments, charging setup time.

    Mapping manipulation is a *serial* operation in the paper's system
    (its setup terms are multiplied by D); the mapper therefore accumulates
    all charges on a single serial clock that the experiment driver adds to
    the elapsed time.
    """

    def __init__(self, costs: MappingCosts | None = None, page_size: int = 4096) -> None:
        self.costs = costs or MappingCosts()
        self.page_size = page_size
        self.setup_ms = 0.0
        self._ids = itertools.count(1)
        self._live: dict[int, SimSegment] = {}

    def new_map(
        self,
        name: str,
        disk: SimDisk,
        capacity_objects: int,
        object_bytes: int,
    ) -> SimSegment:
        """Create a mapping over *new* disk space (the paper's newMap)."""
        segment = self._build(name, disk, capacity_objects, object_bytes)
        self.setup_ms += self.costs.new_map_ms(segment.n_pages)
        return segment

    def open_map(self, segment: SimSegment) -> SimSegment:
        """Re-establish a mapping to existing data (the paper's openMap)."""
        if segment.segment_id not in self._live:
            raise SegmentError(f"segment {segment.name!r} is not live")
        self.setup_ms += self.costs.open_map_ms(segment.n_pages)
        return segment

    def delete_map(self, segment: SimSegment) -> None:
        """Destroy a mapping *and its data* (the paper's deleteMap)."""
        if self._live.pop(segment.segment_id, None) is None:
            raise SegmentError(f"segment {segment.name!r} already deleted")
        self.setup_ms += self.costs.delete_map_ms(segment.n_pages)
        segment.disk.free(segment.start_block, segment.n_pages)
        segment.initialized_pages.clear()

    def _build(
        self, name: str, disk: SimDisk, capacity_objects: int, object_bytes: int
    ) -> SimSegment:
        segment_id = next(self._ids)
        # Pages needed mirrors SimSegment's own computation.
        per_page = max(1, self.page_size // object_bytes)
        n_pages = max(1, -(-max(capacity_objects, 1) // per_page))
        start = disk.allocate(n_pages)
        segment = SimSegment(
            segment_id=segment_id,
            name=name,
            disk=disk,
            start_block=start,
            capacity_objects=capacity_objects,
            object_bytes=object_bytes,
            page_size=self.page_size,
        )
        self._live[segment_id] = segment
        return segment

    def take_setup_ms(self) -> float:
        """Read and reset the accumulated serial setup time."""
        total = self.setup_ms
        self.setup_ms = 0.0
        return total
