"""Per-process paged memory with demand paging and dirty-page write-back.

Every simulated process owns a fixed number of page frames managed by a
replacement policy.  An object access translates to a page access:

* **hit** — zero I/O cost (the paper: "if the block is not in primary
  memory, it is read in by means of a page fault; otherwise, no disk access
  takes place");
* **miss** — evict a victim if the frames are full (paying the deferred
  write of a dirty victim), then read the faulting block unless the page is
  demand-zero (never materialized on disk).

All I/O costs come from the owning disk's mechanical model, so access
*order* — bands of arm movement, interleaved reads and writes — determines
cost exactly as in the paper's measured environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.errors import MemoryError_
from repro.sim.replacement import ReplacementPolicy, make_policy
from repro.sim.segment import SimSegment
from repro.sim.stats import MemoryStats

PageKey = Tuple[int, int]  # (segment_id, page_number)


@dataclass
class _ResidentPage:
    segment: SimSegment
    page: int
    dirty: bool = False


class PagedMemory:
    """A fixed pool of page frames in front of the simulated disks."""

    def __init__(
        self,
        frames: int,
        policy: str | ReplacementPolicy = "lru",
        stats: MemoryStats | None = None,
    ) -> None:
        if frames < 1:
            raise MemoryError_("a paged memory needs at least one frame")
        self.frames = frames
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.stats = stats or MemoryStats()
        self._resident: Dict[PageKey, _ResidentPage] = {}

    # -------------------------------------------------------------- access

    def access(self, segment: SimSegment, page: int, write: bool = False) -> float:
        """Touch one page; returns the I/O time charged, in milliseconds."""
        key = (segment.segment_id, page)
        self.stats.accesses += 1
        entry = self._resident.get(key)
        if entry is not None:
            self.policy.touch(key)
            if write:
                entry.dirty = True
            return 0.0

        self.stats.faults += 1
        cost = 0.0
        if len(self._resident) >= self.frames:
            cost += self._evict_one()
        if page in segment.initialized_pages:
            cost += segment.disk.read_block(segment.block_of_page(page))
        # else: demand-zero page — no disk read needed.
        self._resident[key] = _ResidentPage(segment=segment, page=page, dirty=write)
        self.policy.insert(key)
        return cost

    def _evict_one(self) -> float:
        key = self.policy.evict()
        entry = self._resident.pop(key)
        self.stats.evictions += 1
        if not entry.dirty:
            return 0.0
        self.stats.dirty_evictions += 1
        entry.segment.initialized_pages.add(entry.page)
        return entry.segment.disk.write_block(entry.segment.block_of_page(entry.page))

    # ------------------------------------------------------------ lifecycle

    def flush(self, segment: SimSegment | None = None) -> float:
        """Write back dirty pages (of one segment, or all); returns time.

        Pages stay resident — this is the paper's "the writing of a (dirty)
        block of data takes place when that page is replaced by the
        operating system", invoked at pass boundaries where the analysis
        charges the outstanding writes.
        """
        cost = 0.0
        for key, entry in self._resident.items():
            if segment is not None and entry.segment is not segment:
                continue
            if entry.dirty:
                entry.segment.initialized_pages.add(entry.page)
                cost += entry.segment.disk.write_block(
                    entry.segment.block_of_page(entry.page)
                )
                entry.dirty = False
        return cost

    def drop_segment(self, segment: SimSegment, discard: bool = False) -> float:
        """Remove a segment's pages from memory.

        With ``discard`` the dirty pages are thrown away (deleteMap destroys
        the data); otherwise they are written back first.
        """
        cost = 0.0
        doomed = [
            key for key, entry in self._resident.items() if entry.segment is segment
        ]
        for key in doomed:
            entry = self._resident.pop(key)
            self.policy.remove(key)
            if entry.dirty and not discard:
                entry.segment.initialized_pages.add(entry.page)
                cost += entry.segment.disk.write_block(
                    entry.segment.block_of_page(entry.page)
                )
        return cost

    # ------------------------------------------------------------- queries

    def is_resident(self, segment: SimSegment, page: int) -> bool:
        return (segment.segment_id, page) in self._resident

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def resident_pages_of(self, segment: SimSegment) -> int:
        return sum(
            1 for entry in self._resident.values() if entry.segment is segment
        )
