"""Simulated disk with a mechanical arm and write-behind scheduling.

The paper's disk cost model (Figure 1a) is *measured*, not derived: the
average per-block transfer time grows with the size of the band over which
random accesses occur, and deferred writes are cheaper than reads because
the operating system can batch them and schedule the batch by shortest seek
time.  This module provides a disk whose mechanics *produce* those measured
curves:

* every access pays a fixed transfer time;
* moving the arm beyond the current track adds settle time plus a seek cost
  that grows with the square root of the distance (the classic seek
  characteristic);
* writes are queued and flushed in batches sorted by block address (an
  elevator sweep), so their average arm movement — and hence cost — is a
  fraction of a random read's.

The calibration harness measures ``dttr``/``dttw`` on this disk exactly the
way the paper measured its Fujitsu drives, and those measured curves feed
the analytical model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.errors import DiskError
from repro.sim.stats import DiskStats


@dataclass(frozen=True)
class DiskGeometry:
    """Mechanical parameters of the simulated drive.

    Defaults are tuned so the measured curves resemble the paper's
    Figure 1a: ~6 ms per sequential 4K block, rising toward ~22 ms for
    random access over a 12,800-block band.
    """

    size_blocks: int = 65_536
    transfer_ms: float = 4.0          # media transfer per block
    settle_ms: float = 2.0            # head settle + rotational latency
    track_blocks: int = 32            # same-track accesses need no seek
    seek_base_ms: float = 2.0         # minimum cost of any real seek
    seek_per_sqrt_block_ms: float = 0.214
    write_queue_depth: int = 16       # writes buffered before an elevator flush
    write_enqueue_ms: float = 0.05    # CPU cost of queueing one deferred write

    def __post_init__(self) -> None:
        if self.size_blocks <= 0:
            raise DiskError("disk must have at least one block")
        if self.write_queue_depth < 1:
            raise DiskError("write queue depth must be at least 1")
        for name in (
            "transfer_ms",
            "settle_ms",
            "seek_base_ms",
            "seek_per_sqrt_block_ms",
            "write_enqueue_ms",
        ):
            if getattr(self, name) < 0:
                raise DiskError(f"{name} must be non-negative")

    def access_ms(self, distance: int) -> float:
        """Cost of one block access after moving the arm ``distance`` blocks."""
        t = self.transfer_ms
        if distance > self.track_blocks:
            t += self.settle_ms
            t += self.seek_base_ms + self.seek_per_sqrt_block_ms * math.sqrt(distance)
        elif distance > 0:
            t += self.settle_ms
        return t


class SimDisk:
    """One disk controller: a mechanical arm plus a write-behind queue."""

    def __init__(
        self,
        disk_id: int,
        geometry: DiskGeometry | None = None,
        stats: DiskStats | None = None,
    ) -> None:
        self.disk_id = disk_id
        self.geometry = geometry or DiskGeometry()
        self.stats = stats or DiskStats()
        self._arm = 0
        self._pending_writes: list[int] = []
        self._alloc_cursor = 0

    # ------------------------------------------------------------------ I/O

    @property
    def arm_position(self) -> int:
        return self._arm

    @property
    def pending_write_count(self) -> int:
        return len(self._pending_writes)

    def read_block(self, block: int) -> float:
        """Synchronously read one block; returns elapsed milliseconds.

        A read that targets a block sitting in the write queue still pays
        full cost here (the OS would satisfy it from the buffer cache, but
        the paged-memory layer above already models residence — a read
        reaching the disk layer means the page truly is not in memory).
        """
        self._check_block(block)
        cost = self.geometry.access_ms(abs(block - self._arm))
        self._arm = block
        self.stats.blocks_read += 1
        self.stats.read_ms += cost
        return cost

    def write_block(self, block: int) -> float:
        """Queue one deferred block write; returns elapsed milliseconds.

        The write itself is charged when the queue flushes; flushing happens
        automatically when the queue reaches its depth, or explicitly via
        :meth:`flush` at a pass boundary.
        """
        self._check_block(block)
        self._pending_writes.append(block)
        cost = self.geometry.write_enqueue_ms
        if len(self._pending_writes) >= self.geometry.write_queue_depth:
            cost += self.flush()
        return cost

    def flush(self) -> float:
        """Write out the queued blocks in elevator (sorted) order."""
        if not self._pending_writes:
            return 0.0
        total = 0.0
        # Sweep toward the nearer end first, then straight through.
        batch = sorted(self._pending_writes)
        if abs(self._arm - batch[-1]) < abs(self._arm - batch[0]):
            batch.reverse()
        for block in batch:
            step = self.geometry.access_ms(abs(block - self._arm))
            self._arm = block
            total += step
            self.stats.blocks_written += 1
        self.stats.write_ms += total
        self.stats.flushes += 1
        self._pending_writes.clear()
        return total

    # ----------------------------------------------------------- allocation

    def allocate(self, n_blocks: int) -> int:
        """Reserve ``n_blocks`` contiguous blocks; returns the start block.

        Allocation is a simple bump cursor — segments on one disk are laid
        out contiguously in creation order, matching the paper's disk-layout
        diagrams (``[ Ri | Si | RPi | ... ]``).
        """
        if n_blocks <= 0:
            raise DiskError("allocation must cover at least one block")
        if self._alloc_cursor + n_blocks > self.geometry.size_blocks:
            raise DiskError(
                f"disk {self.disk_id} full: cannot allocate {n_blocks} blocks "
                f"at cursor {self._alloc_cursor} "
                f"(size {self.geometry.size_blocks})"
            )
        start = self._alloc_cursor
        self._alloc_cursor += n_blocks
        return start

    def free(self, start_block: int, n_blocks: int) -> None:
        """Release blocks.

        Only the most recent allocation can be reclaimed (stack discipline),
        which is all the join algorithms need for their temporary areas; any
        other free is accepted but leaves the space unused.
        """
        if start_block + n_blocks == self._alloc_cursor:
            self._alloc_cursor = start_block

    @property
    def allocated_blocks(self) -> int:
        return self._alloc_cursor

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.geometry.size_blocks:
            raise DiskError(
                f"block {block} outside disk {self.disk_id} "
                f"(size {self.geometry.size_blocks})"
            )
