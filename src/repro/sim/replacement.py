"""Page replacement policies for the simulated paged memory.

The paper's testbed (Dynix) uses "a simple page replacement algorithm", and
a recurring observation of the paper is that the *wrong* replacement
decisions of LRU-style aging cause thrashing in the sort-merge and Grace
algorithms.  Three classic policies are provided so the replacement-policy
ablation bench can quantify that observation:

* :class:`LruPolicy`   — exact least-recently-used (the model's assumption);
* :class:`ClockPolicy` — second-chance approximation of LRU (closest to the
  Dynix behaviour the paper describes);
* :class:`FifoPolicy`  — oldest-loaded-first, ignoring recency entirely.

A policy tracks page *keys* only; the owning :class:`~repro.sim.memory.PagedMemory`
keeps the page contents and dirty bits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Hashable, Iterator

from repro.sim.errors import MemoryError_

PageKey = Hashable


class ReplacementPolicy(ABC):
    """Interface shared by the replacement policies."""

    @abstractmethod
    def insert(self, key: PageKey) -> None:
        """Register a newly-loaded page."""

    @abstractmethod
    def touch(self, key: PageKey) -> None:
        """Record a reference to a resident page."""

    @abstractmethod
    def evict(self) -> PageKey:
        """Choose and remove the victim page, returning its key."""

    @abstractmethod
    def remove(self, key: PageKey) -> None:
        """Forget a page (e.g. its segment was unmapped)."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, key: PageKey) -> bool: ...

    @abstractmethod
    def __iter__(self) -> Iterator[PageKey]: ...


class LruPolicy(ReplacementPolicy):
    """Exact LRU on an ordered dict: least recently used is evicted first."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageKey, None] = OrderedDict()

    def insert(self, key: PageKey) -> None:
        if key in self._order:
            raise MemoryError_(f"page {key!r} inserted twice")
        self._order[key] = None

    def touch(self, key: PageKey) -> None:
        if key not in self._order:
            raise MemoryError_(f"touched non-resident page {key!r}")
        self._order.move_to_end(key)

    def evict(self) -> PageKey:
        if not self._order:
            raise MemoryError_("evict from empty memory")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._order

    def __iter__(self) -> Iterator[PageKey]:
        return iter(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK): referenced pages get one reprieve per sweep."""

    def __init__(self) -> None:
        self._ring: OrderedDict[PageKey, bool] = OrderedDict()

    def insert(self, key: PageKey) -> None:
        if key in self._ring:
            raise MemoryError_(f"page {key!r} inserted twice")
        self._ring[key] = True

    def touch(self, key: PageKey) -> None:
        if key not in self._ring:
            raise MemoryError_(f"touched non-resident page {key!r}")
        self._ring[key] = True

    def evict(self) -> PageKey:
        if not self._ring:
            raise MemoryError_("evict from empty memory")
        while True:
            key, referenced = next(iter(self._ring.items()))
            if referenced:
                # Clear the reference bit and move the hand past the page.
                self._ring[key] = False
                self._ring.move_to_end(key)
            else:
                del self._ring[key]
                return key

    def remove(self, key: PageKey) -> None:
        self._ring.pop(key, None)

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._ring

    def __iter__(self) -> Iterator[PageKey]:
        return iter(self._ring)


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: references never change the eviction order."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageKey, None] = OrderedDict()

    def insert(self, key: PageKey) -> None:
        if key in self._order:
            raise MemoryError_(f"page {key!r} inserted twice")
        self._order[key] = None

    def touch(self, key: PageKey) -> None:
        if key not in self._order:
            raise MemoryError_(f"touched non-resident page {key!r}")

    def evict(self) -> PageKey:
        if not self._order:
            raise MemoryError_("evict from empty memory")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._order

    def __iter__(self) -> Iterator[PageKey]:
        return iter(self._order)


POLICY_FACTORIES = {
    "lru": LruPolicy,
    "clock": ClockPolicy,
    "fifo": FifoPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``clock``/``fifo``)."""
    try:
        factory = POLICY_FACTORIES[name.lower()]
    except KeyError:
        raise MemoryError_(
            f"unknown replacement policy {name!r}; "
            f"choices: {sorted(POLICY_FACTORIES)}"
        ) from None
    return factory()
