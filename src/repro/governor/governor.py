"""Bounded admission control for concurrent ``run_real_join`` callers.

The paper's machine model has a fixed number of processors and disks; the
runtime equivalent is that N concurrent joins each spawning ``disks``
worker processes oversubscribe the pool and *all* of them thrash.  A
:class:`ResourceGovernor` is a small counting semaphore with a bounded
wait queue and an optional per-join deadline: up to ``max_concurrent``
joins run, up to ``queue_limit`` more wait their turn, and everything
beyond that (or anything whose deadline lapses while queued) is rejected
with a classified :class:`~repro.governor.errors.AdmissionRejected` —
backpressure as an error the caller can act on, not a mystery slowdown.

The join-service daemon extends the same gate to *multi-tenant* serving:

* every admission may carry a ``tenant`` name and an integer ``priority``
  (higher wins); when a slot frees, the highest-priority waiter — FIFO
  within a priority — is admitted, so a burst from a batch tenant cannot
  starve an interactive one;
* ``tenant_limits`` caps how many joins one tenant may have running at
  once regardless of free global slots (a per-tenant concurrency budget);
* per-tenant admitted/queued/rejected/degraded counts are kept for the
  service stats document (``service.tenants`` in schema v4).

One governor instance is shared by the callers it should arbitrate
(typically one per process serving many joins); ``run_real_join`` accepts
it as an optional parameter and runs ungoverned when none is given.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Mapping, Optional

from repro.governor.errors import AdmissionRejected


class AdmissionTicket:
    """Proof of admission; release it (or use as a context manager)."""

    def __init__(
        self,
        governor: "ResourceGovernor",
        decision: str,
        queued_ms: float,
        tenant: Optional[str] = None,
    ) -> None:
        self._governor = governor
        self.decision = decision  # "admitted" | "queued"
        self.queued_ms = queued_ms
        self.tenant = tenant
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._governor._release(self.tenant)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def _tenant_entry() -> Dict[str, int]:
    return {"admitted": 0, "queued": 0, "rejected": 0, "degraded": 0}


class ResourceGovernor:
    """Admit at most ``max_concurrent`` joins; queue a bounded overflow.

    Waiters are served highest-priority-first (FIFO within a priority);
    ``tenant_limits`` optionally caps per-tenant concurrency below the
    global limit.  Anonymous admissions (no tenant) keep the original
    single-caller semantics exactly.
    """

    def __init__(
        self,
        max_concurrent: int = 1,
        queue_limit: int = 8,
        deadline_s: Optional[float] = None,
        tenant_limits: Optional[Mapping[str, int]] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {max_concurrent}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0: {queue_limit}")
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.deadline_s = deadline_s
        self.tenant_limits: Dict[str, int] = dict(tenant_limits or {})
        for tenant, limit in self.tenant_limits.items():
            if limit < 1:
                raise ValueError(
                    f"tenant limit must be >= 1: {tenant!r} -> {limit}"
                )
        self._lock = threading.Condition()
        self._running = 0
        self._running_by_tenant: Dict[str, int] = {}
        # Waiters as (-priority, seq) keys: min() is the next to admit —
        # highest priority first, then arrival order.
        self._wait_queue: Dict[tuple, Optional[str]] = {}
        self._seq = 0
        self._waiting = 0
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0
        self.tenants: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------- internals

    def _tenant_stats(self, tenant: Optional[str]) -> Optional[Dict[str, int]]:
        if tenant is None:
            return None
        return self.tenants.setdefault(tenant, _tenant_entry())

    def _tenant_has_room(self, tenant: Optional[str]) -> bool:
        if tenant is None or tenant not in self.tenant_limits:
            return True
        return (
            self._running_by_tenant.get(tenant, 0)
            < self.tenant_limits[tenant]
        )

    def _can_run(self, tenant: Optional[str]) -> bool:
        return self._running < self.max_concurrent and self._tenant_has_room(
            tenant
        )

    def _start_running(self, tenant: Optional[str]) -> None:
        self._running += 1
        if tenant is not None:
            self._running_by_tenant[tenant] = (
                self._running_by_tenant.get(tenant, 0) + 1
            )

    # -------------------------------------------------------------- admission

    def admit(
        self,
        on_pressure: str = "degrade",
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        priority: int = 0,
    ) -> AdmissionTicket:
        """Block until a slot frees (or fail fast under ``on_pressure="fail"``).

        Returns an :class:`AdmissionTicket` whose ``decision`` records
        whether the join ran immediately or waited.  Raises
        :class:`AdmissionRejected` when the caller declines to wait, the
        queue is full, or the deadline lapses before a slot frees.
        """
        deadline = deadline_s if deadline_s is not None else self.deadline_s
        with self._lock:
            stats = self._tenant_stats(tenant)
            # Immediate admission only when no better-placed waiter exists:
            # a new arrival must not overtake a higher-or-equal-priority
            # waiter that is merely blocked on the global slot count.
            contested = any(
                key[0] <= -priority for key in self._wait_queue
            )
            if self._can_run(tenant) and not contested:
                self._start_running(tenant)
                self.admitted_total += 1
                if stats is not None:
                    stats["admitted"] += 1
                return AdmissionTicket(self, "admitted", 0.0, tenant)
            if on_pressure == "fail":
                self.rejected_total += 1
                if stats is not None:
                    stats["rejected"] += 1
                raise AdmissionRejected(
                    "governor saturated and on_pressure=fail",
                    requested=1,
                    limit=self.max_concurrent,
                    used=self._running,
                )
            if self._waiting >= self.queue_limit:
                self.rejected_total += 1
                if stats is not None:
                    stats["rejected"] += 1
                raise AdmissionRejected(
                    "governor admission queue is full",
                    requested=1,
                    limit=self.queue_limit,
                    used=self._waiting,
                )
            key = (-priority, self._seq)
            self._seq += 1
            self._wait_queue[key] = tenant
            self._waiting += 1
            started = time.monotonic()
            try:
                while True:
                    if self._can_run(tenant) and self._next_waiter() == key:
                        break
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - (time.monotonic() - started)
                        if remaining <= 0:
                            self.rejected_total += 1
                            if stats is not None:
                                stats["rejected"] += 1
                            raise AdmissionRejected(
                                f"admission deadline of {deadline:g}s lapsed "
                                "while queued",
                                limit=self.max_concurrent,
                                used=self._running,
                            )
                    self._lock.wait(timeout=remaining)
            finally:
                del self._wait_queue[key]
                self._waiting -= 1
                # A waiter leaving (admitted or rejected) may unblock the
                # next in line — e.g. when this one was the queue head.
                self._lock.notify_all()
            self._start_running(tenant)
            self.admitted_total += 1
            self.queued_total += 1
            if stats is not None:
                stats["admitted"] += 1
                stats["queued"] += 1
            queued_ms = (time.monotonic() - started) * 1000.0
            return AdmissionTicket(self, "queued", queued_ms, tenant)

    def _next_waiter(self) -> Optional[tuple]:
        """The wait-queue key that should be admitted next, if any.

        Highest priority first, FIFO within a priority — except that a
        head blocked *only* by its own tenant's concurrency cap must not
        wedge the queue, so the scan skips tenant-capped waiters.
        """
        for key in sorted(self._wait_queue):
            if self._tenant_has_room(self._wait_queue[key]):
                return key
        return None

    def _release(self, tenant: Optional[str] = None) -> None:
        with self._lock:
            self._running = max(0, self._running - 1)
            if tenant is not None and tenant in self._running_by_tenant:
                remaining = self._running_by_tenant[tenant] - 1
                if remaining > 0:
                    self._running_by_tenant[tenant] = remaining
                else:
                    del self._running_by_tenant[tenant]
            # notify_all, not notify: admission order is decided by the
            # priority queue, and the woken thread must re-check whether
            # it is the chosen head.
            self._lock.notify_all()

    # ------------------------------------------------------------- accounting

    def note_degraded(self, tenant: Optional[str], rounds: int = 1) -> None:
        """Attribute ``rounds`` plan degradations to ``tenant``.

        The governor only sees admissions; the executor's degradation
        loop reports back through the caller (the service daemon) so the
        per-tenant counts land in one place.
        """
        if tenant is None or rounds <= 0:
            return
        with self._lock:
            self._tenant_stats(tenant)["degraded"] += rounds

    def note_rejected(self, tenant: Optional[str]) -> None:
        """Count a rejection decided *outside* ``admit`` (e.g. a budget
        preflight refusing the plan before admission was attempted)."""
        with self._lock:
            self.rejected_total += 1
            stats = self._tenant_stats(tenant)
            if stats is not None:
                stats["rejected"] += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_concurrent": self.max_concurrent,
                "queue_limit": self.queue_limit,
                "running": self._running,
                "waiting": self._waiting,
                "admitted_total": self.admitted_total,
                "queued_total": self.queued_total,
                "rejected_total": self.rejected_total,
                "tenant_limits": dict(self.tenant_limits),
                "tenants": {
                    name: dict(entry) for name, entry in self.tenants.items()
                },
            }
