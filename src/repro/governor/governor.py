"""Bounded admission control for concurrent ``run_real_join`` callers.

The paper's machine model has a fixed number of processors and disks; the
runtime equivalent is that N concurrent joins each spawning ``disks``
worker processes oversubscribe the pool and *all* of them thrash.  A
:class:`ResourceGovernor` is a small counting semaphore with a bounded
wait queue and an optional per-join deadline: up to ``max_concurrent``
joins run, up to ``queue_limit`` more wait their turn, and everything
beyond that (or anything whose deadline lapses while queued) is rejected
with a classified :class:`~repro.governor.errors.AdmissionRejected` —
backpressure as an error the caller can act on, not a mystery slowdown.

One governor instance is shared by the callers it should arbitrate
(typically one per process serving many joins); ``run_real_join`` accepts
it as an optional parameter and runs ungoverned when none is given.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.governor.errors import AdmissionRejected


class AdmissionTicket:
    """Proof of admission; release it (or use as a context manager)."""

    def __init__(
        self, governor: "ResourceGovernor", decision: str, queued_ms: float
    ) -> None:
        self._governor = governor
        self.decision = decision  # "admitted" | "queued"
        self.queued_ms = queued_ms
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._governor._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResourceGovernor:
    """Admit at most ``max_concurrent`` joins; queue a bounded overflow."""

    def __init__(
        self,
        max_concurrent: int = 1,
        queue_limit: int = 8,
        deadline_s: Optional[float] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {max_concurrent}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0: {queue_limit}")
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.deadline_s = deadline_s
        self._lock = threading.Condition()
        self._running = 0
        self._waiting = 0
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0

    def admit(
        self, on_pressure: str = "degrade", deadline_s: Optional[float] = None
    ) -> AdmissionTicket:
        """Block until a slot frees (or fail fast under ``on_pressure="fail"``).

        Returns an :class:`AdmissionTicket` whose ``decision`` records
        whether the join ran immediately or waited.  Raises
        :class:`AdmissionRejected` when the caller declines to wait, the
        queue is full, or the deadline lapses before a slot frees.
        """
        deadline = deadline_s if deadline_s is not None else self.deadline_s
        with self._lock:
            if self._running < self.max_concurrent:
                self._running += 1
                self.admitted_total += 1
                return AdmissionTicket(self, "admitted", 0.0)
            if on_pressure == "fail":
                self.rejected_total += 1
                raise AdmissionRejected(
                    "governor saturated and on_pressure=fail",
                    requested=1,
                    limit=self.max_concurrent,
                    used=self._running,
                )
            if self._waiting >= self.queue_limit:
                self.rejected_total += 1
                raise AdmissionRejected(
                    "governor admission queue is full",
                    requested=1,
                    limit=self.queue_limit,
                    used=self._waiting,
                )
            self._waiting += 1
            started = time.monotonic()
            try:
                while self._running >= self.max_concurrent:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - (time.monotonic() - started)
                        if remaining <= 0:
                            self.rejected_total += 1
                            raise AdmissionRejected(
                                f"admission deadline of {deadline:g}s lapsed "
                                "while queued",
                                limit=self.max_concurrent,
                                used=self._running,
                            )
                    self._lock.wait(timeout=remaining)
            finally:
                self._waiting -= 1
            self._running += 1
            self.admitted_total += 1
            self.queued_total += 1
            queued_ms = (time.monotonic() - started) * 1000.0
            return AdmissionTicket(self, "queued", queued_ms)

    def _release(self) -> None:
        with self._lock:
            self._running = max(0, self._running - 1)
            self._lock.notify()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_concurrent": self.max_concurrent,
                "queue_limit": self.queue_limit,
                "running": self._running,
                "waiting": self._waiting,
                "admitted_total": self.admitted_total,
                "queued_total": self.queued_total,
                "rejected_total": self.rejected_total,
            }
