"""Classified resource-exhaustion errors for the real-mmap backend.

The seed backend surfaced resource pressure as whatever the OS happened to
raise — a raw ``OSError(ENOSPC)`` out of an ``ftruncate`` deep inside
segment creation, or a ``MemoryError`` from an over-full worker buffer.
Callers could not tell "this join needs a different plan" apart from "the
code is broken".  This module gives every resource failure one classified
type with the three numbers a governor needs to react: what was asked for,
what the limit was, and what was already in use.

All of these exceptions cross :mod:`multiprocessing` pool boundaries, so
they implement ``__reduce__`` explicitly — the default ``Exception``
pickling drops keyword-initialized attributes, and a classified error that
arrives in the parent stripped of its classification would defeat the
point.

This is a leaf module: it imports nothing from the storage, model or
parallel layers, so any of them may raise these errors without cycles.
"""

from __future__ import annotations

import errno
from typing import Optional

#: OS error numbers that mean "the disk (or quota) is full".
DISK_FULL_ERRNOS = frozenset(
    {errno.ENOSPC} | ({errno.EDQUOT} if hasattr(errno, "EDQUOT") else set())
)


class ResourceExhausted(RuntimeError):
    """A join hit (or would hit) a resource budget.

    ``resource`` is a class attribute — ``"memory"``, ``"disk"`` or
    ``"admission"`` — so callers can route on type *or* on the string
    (the stats document records the string).
    """

    resource = "resource"

    def __init__(
        self,
        message: str,
        requested: Optional[int] = None,
        limit: Optional[int] = None,
        used: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.limit = limit
        self.used = used

    def __reduce__(self):
        # Explicit so requested/limit/used survive pool pickling.
        return (
            self.__class__,
            (
                self.args[0] if self.args else "",
                self.requested,
                self.limit,
                self.used,
            ),
        )

    def describe(self) -> str:
        parts = [str(self.args[0]) if self.args else self.resource]
        if self.requested is not None:
            parts.append(f"requested={self.requested}")
        if self.used is not None:
            parts.append(f"used={self.used}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return " ".join(parts)


class MemoryExhausted(ResourceExhausted):
    """A memory budget (or the machine's memory) was exhausted."""

    resource = "memory"


class DiskExhausted(ResourceExhausted):
    """A disk budget (or the filesystem) was exhausted."""

    resource = "disk"


class AdmissionRejected(ResourceExhausted):
    """The governor declined to run a join (queue full, deadline, policy)."""

    resource = "admission"


def classify_os_error(
    error: BaseException, context: str
) -> Optional[ResourceExhausted]:
    """The classified twin of an OS-level resource error, or ``None``.

    ``ENOSPC``/``EDQUOT`` become :class:`DiskExhausted`, ``ENOMEM`` and
    ``MemoryError`` become :class:`MemoryExhausted`; anything else is not a
    resource error and returns ``None`` (the caller re-raises the
    original).  An already-classified error passes through unchanged so
    boundary code can call this unconditionally.
    """
    if isinstance(error, ResourceExhausted):
        return error
    if isinstance(error, MemoryError):
        return MemoryExhausted(f"{context}: out of memory")
    code = getattr(error, "errno", None)
    if code in DISK_FULL_ERRNOS:
        return DiskExhausted(f"{context}: out of disk space ({error})")
    if code == errno.ENOMEM:
        return MemoryExhausted(f"{context}: out of memory ({error})")
    return None
