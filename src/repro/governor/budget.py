"""Budget propagation and disk reservation accounting.

Budgets follow the same files-only protocol as the metrics marker and the
fault plan: the driver writes a small ``governor.json`` into the store
root, and every worker (including pool processes forked before the join
began) reads it at task entry.  Nothing is widened in any worker argument
or return type.

Disk accounting exploits a property the storage layer already has:
:meth:`MappedSegment.create` truncates the file to its *full* capacity up
front, so a segment's ``st_size`` **is** its disk reservation — summing
file sizes over the store gives exactly the space the run has claimed,
with no separate reservation ledger to keep consistent.
:func:`disk_preflight` checks a prospective creation against the budget
*before* the ``ftruncate`` that would otherwise die with a raw ``ENOSPC``
mid-write, and raises the classified
:class:`~repro.governor.errors.DiskExhausted` instead.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.governor.errors import DiskExhausted

#: Presence of this file in the store root arms budget enforcement.
GOVERNOR_FILE = "governor.json"

#: Suffixes of the files whose sizes constitute the store's disk usage
#: (segments and their unpublished tmp siblings; control files are noise).
_SEGMENT_SUFFIXES = (".seg", ".seg.tmp")


@dataclass(frozen=True)
class BudgetFile:
    """The per-run budgets the driver hands its workers."""

    worker_mem_budget_bytes: Optional[int] = None
    disk_budget_bytes: Optional[int] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "worker_mem_budget_bytes": self.worker_mem_budget_bytes,
                "disk_budget_bytes": self.disk_budget_bytes,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "BudgetFile":
        data = json.loads(text)
        return cls(
            worker_mem_budget_bytes=data.get("worker_mem_budget_bytes"),
            disk_budget_bytes=data.get("disk_budget_bytes"),
        )


def install_budgets(
    root: str | os.PathLike,
    worker_mem_budget_bytes: Optional[int] = None,
    disk_budget_bytes: Optional[int] = None,
) -> Path:
    """Arm budgets for every worker that opens ``root``."""
    path = Path(root) / GOVERNOR_FILE
    path.write_text(
        BudgetFile(worker_mem_budget_bytes, disk_budget_bytes).to_json()
    )
    return path


def load_budgets(root: str | os.PathLike) -> Optional[BudgetFile]:
    """The armed budgets, or ``None``.  Costs one ``stat`` when unarmed."""
    path = Path(root) / GOVERNOR_FILE
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        return BudgetFile.from_json(text)
    except (ValueError, TypeError):
        # A torn/garbage budget file must not take the whole run down;
        # treat it as unarmed (the driver rewrites it every run anyway).
        return None


def sweep_budgets(root: str | os.PathLike) -> None:
    """Remove the budget file (called on every run-exit path)."""
    root = Path(root)
    if root.exists():
        (root / GOVERNOR_FILE).unlink(missing_ok=True)


def store_usage_bytes(root: str | os.PathLike) -> int:
    """Bytes currently reserved by segments (and tmps) under ``root``.

    Because segments are truncated to full capacity at creation, this is
    the run's true disk reservation, not just the bytes written so far.
    """
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(_SEGMENT_SUFFIXES):
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    continue  # racing an unlink is fine; it freed space
    return total


def disk_preflight(segment_path: str | os.PathLike, nbytes: int) -> None:
    """Refuse a segment creation that would cross the store's disk budget.

    ``segment_path`` lives at ``<root>/disk<N>/<name>.seg``, so the store
    root (where ``governor.json`` lives) is two levels up.  Without an
    armed budget this is one failed ``stat``.
    """
    root = Path(segment_path).parent.parent
    budgets = load_budgets(root)
    if budgets is None or budgets.disk_budget_bytes is None:
        return
    used = store_usage_bytes(root)
    if used + nbytes > budgets.disk_budget_bytes:
        raise DiskExhausted(
            f"disk budget exceeded creating {Path(segment_path).name}",
            requested=nbytes,
            limit=budgets.disk_budget_bytes,
            used=used,
        )
