"""Model-driven resource governor for the real-mmap backend.

Predicts each join's memory/disk footprint with the paper's analytical
model (:mod:`repro.governor.predict`), enforces budgets at runtime via a
per-process memory meter (:mod:`repro.governor.watchdog`) and disk
preflights (:mod:`repro.governor.budget`), classifies resource failures
(:mod:`repro.governor.errors`), and bounds concurrent admissions
(:mod:`repro.governor.governor`).

The package depends only on :mod:`repro.model` and the standard library,
so the storage and parallel layers can import it without cycles.
"""

from repro.governor.budget import (
    GOVERNOR_FILE,
    BudgetFile,
    disk_preflight,
    install_budgets,
    load_budgets,
    store_usage_bytes,
    sweep_budgets,
)
from repro.governor.errors import (
    DISK_FULL_ERRNOS,
    AdmissionRejected,
    DiskExhausted,
    MemoryExhausted,
    ResourceExhausted,
    classify_os_error,
)
from repro.governor.governor import AdmissionTicket, ResourceGovernor
from repro.governor.predict import (
    FIT_MARGIN,
    MAX_BUCKETS,
    MIN_BATCH_RECORDS,
    MIN_IRUN,
    FootprintEstimate,
    JoinPlan,
    fit_plan,
    predict_footprint,
)
from repro.governor.watchdog import (
    MemoryMeter,
    NullMeter,
    activate_meter,
    active_meter,
    deactivate_meter,
    metering,
    rss_high_water_bytes,
)

__all__ = [
    "GOVERNOR_FILE",
    "BudgetFile",
    "disk_preflight",
    "install_budgets",
    "load_budgets",
    "store_usage_bytes",
    "sweep_budgets",
    "DISK_FULL_ERRNOS",
    "AdmissionRejected",
    "DiskExhausted",
    "MemoryExhausted",
    "ResourceExhausted",
    "classify_os_error",
    "AdmissionTicket",
    "ResourceGovernor",
    "FIT_MARGIN",
    "MAX_BUCKETS",
    "MIN_BATCH_RECORDS",
    "MIN_IRUN",
    "FootprintEstimate",
    "JoinPlan",
    "fit_plan",
    "predict_footprint",
    "MemoryMeter",
    "NullMeter",
    "activate_meter",
    "active_meter",
    "deactivate_meter",
    "metering",
    "rss_high_water_bytes",
]
