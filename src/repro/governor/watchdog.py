"""The per-process memory meter: the governor's runtime watchdog.

The budget a join is admitted under has to be *enforced* somewhere, and
"somewhere" cannot be the OS — by the time the kernel notices pressure the
worker is an OOM-kill candidate, not a degradation candidate.  So each
worker process carries a :class:`MemoryMeter` that the hot paths charge in
**record bytes** — the unit the analytical model predicts in
(:mod:`repro.governor.predict`), which is what makes the predicted-vs-
observed comparison in the stats document an apples-to-apples one.

Charges cover the buffered *objects* a worker retains (decoded batches,
grace bucket groups, sort runs); file-backed mapped bytes are tracked
separately (:meth:`MemoryMeter.map_bytes`) but never limited — the OS
pager reclaims clean mapped pages under pressure, so mapping a large
segment is not the same hazard as materializing it.

Activation mirrors :mod:`repro.obs.registry`: a process-local stack, a
shared no-op :class:`NullMeter` when nothing is active, and a ``metering``
context manager.  A charge that would cross the limit raises
:class:`~repro.governor.errors.MemoryExhausted` *before* allocating, which
the runner's degradation loop turns into a smaller plan instead of a dead
worker.

RSS is sampled once per task from ``getrusage`` — a lifetime high-water
mark per process, reported as a coarse cross-check gauge next to the
precise record-byte meter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.governor.errors import MemoryExhausted

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

import sys


def rss_high_water_bytes() -> Optional[int]:
    """This process's lifetime peak RSS in bytes, if the OS reports one."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


class MemoryMeter:
    """Track (and optionally limit) one process's buffered record bytes."""

    enabled = True

    def __init__(self, limit_bytes: Optional[int] = None) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive: {limit_bytes}")
        self.limit_bytes = limit_bytes
        self.charged_bytes = 0
        self.high_water_bytes = 0
        self.mapped_bytes = 0
        self.mapped_high_water_bytes = 0

    # ------------------------------------------------------- record buffers

    def charge(self, nbytes: int, what: str = "buffered records") -> None:
        """Account ``nbytes`` of retained objects; raise before overflow."""
        if nbytes <= 0:
            return
        total = self.charged_bytes + nbytes
        if self.limit_bytes is not None and total > self.limit_bytes:
            raise MemoryExhausted(
                f"memory budget exceeded buffering {what}",
                requested=nbytes,
                limit=self.limit_bytes,
                used=self.charged_bytes,
            )
        self.charged_bytes = total
        if total > self.high_water_bytes:
            self.high_water_bytes = total

    def release(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.charged_bytes = max(0, self.charged_bytes - nbytes)

    # -------------------------------------------------------- mapped bytes

    def map_bytes(self, nbytes: int) -> None:
        """Track a new mapping (observability only — never limited)."""
        if nbytes <= 0:
            return
        self.mapped_bytes += nbytes
        if self.mapped_bytes > self.mapped_high_water_bytes:
            self.mapped_high_water_bytes = self.mapped_bytes

    def unmap_bytes(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.mapped_bytes = max(0, self.mapped_bytes - nbytes)


class NullMeter(MemoryMeter):
    """The disabled meter: every accounting method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(None)

    def charge(self, nbytes: int, what: str = "buffered records") -> None:
        pass

    def release(self, nbytes: int) -> None:
        pass

    def map_bytes(self, nbytes: int) -> None:
        pass

    def unmap_bytes(self, nbytes: int) -> None:
        pass


_NULL = NullMeter()
_ACTIVE: List[MemoryMeter] = []


def active_meter() -> MemoryMeter:
    """The meter instrumented code should charge right now."""
    return _ACTIVE[-1] if _ACTIVE else _NULL


def activate_meter(meter: MemoryMeter) -> MemoryMeter:
    """Push a meter; storage and worker code in this process charges it."""
    _ACTIVE.append(meter)
    return meter


def deactivate_meter() -> Optional[MemoryMeter]:
    """Pop the innermost active meter (no-op when none is active)."""
    return _ACTIVE.pop() if _ACTIVE else None


class metering:
    """``with metering(limit) as meter:`` — scoped activation."""

    def __init__(
        self,
        limit_bytes: Optional[int] = None,
        meter: Optional[MemoryMeter] = None,
    ) -> None:
        self.meter = meter if meter is not None else MemoryMeter(limit_bytes)

    def __enter__(self) -> MemoryMeter:
        return activate_meter(self.meter)

    def __exit__(self, *exc_info) -> None:
        deactivate_meter()
