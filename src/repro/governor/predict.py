"""Model-driven footprint prediction and the degradation ladder.

Admission control is only as good as its estimate, and this repo already
*has* the estimate: the paper's analytical model.  This module turns the
model's machinery — partition geometry (:mod:`repro.model.geometry`), the
Mackert–Lohman ``Ylru`` buffer model (:mod:`repro.model.buffer`) and the
Johnson–Kotz urn model of Grace bucket thrashing (:mod:`repro.model.urn`)
— into the two numbers the governor needs *before* a join runs:

* the per-worker **memory high-water mark**, in the same record-byte unit
  the runtime :class:`~repro.governor.watchdog.MemoryMeter` charges, so
  predicted-vs-observed is a direct comparison (a test asserts the
  tolerance); and
* the **disk footprint** — base relations plus every spill and pairs
  segment at its full creation capacity, which is exactly the reservation
  ``MappedSegment.create`` claims via truncate.

Both numbers are functions of the algorithm's declarative pass plan, not
of the algorithm's name: :func:`predict_footprint` walks the registered
:class:`~repro.parallel.engine.stages.PassPlan` and prices each stage by
its *kind* (scan-join, partition, sort-run, merge, probe), and
:meth:`JoinPlan.degraded` picks ladder rungs by which stage kinds the
plan contains.  Registering a new plan therefore gives the governor its
admission model and degradation ladder for free — hybrid hash added a
resident-join flag and one ladder rung, nothing else.

A :class:`JoinPlan` is the knob set the prediction is a function of, and
:meth:`JoinPlan.degraded` is one rung of the degradation ladder: smaller
batches for scan joins, a smaller sort heap (more, smaller runs) for
sort-runs, chunked spilling and more/smaller buckets for the bucketed
plans, fewer resident buckets for hybrid hash.  :func:`fit_plan` walks
the ladder until the predicted high-water mark fits the budget — the
"re-plan instead of thrash" admission decision.

Deliberately import-light at module level: only :mod:`repro.model`
(itself pure math); the engine's plan registry is imported lazily at
call time so the storage layer can depend on this package without
cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.model.buffer import ylru
from repro.model.geometry import nested_loops_geometry, synchronized_geometry
from repro.model.parameters import MachineParameters
from repro.model.urn import grace_thrashing_estimate

#: Mirrors of storage-layer constants (not imported, to stay cycle-free;
#: pinned by tests against the real values).
PAGE_SIZE = 4096
PAIR_RECORD_BYTES = 32  # struct <QQQQ>: rid, sid, r_payload, s_value

#: Ladder floors/ceilings.  Batches and runs below 64 records spend more
#: time in dispatch than in work; the bucket ceiling keeps the
#: BucketedRFile per-bucket directory inside the header page's spare room.
MIN_BATCH_RECORDS = 64
MIN_IRUN = 64
MAX_BUCKETS = 248

#: fit_plan aims below the budget by this margin: the prediction is a
#: model, and landing exactly on the limit would turn every small
#: mis-estimate into a runtime degradation round.
FIT_MARGIN = 0.75

#: Mirror of :data:`repro.parallel.engine.rebalance.REBALANCE_RATIO`
#: (not imported — that module pulls in the storage layer).  With
#: rebalancing active the executor splits any partition whose share
#: exceeds this multiple of the mean into proportional shards, so the
#: worst *task* the shardable stage kinds run is capped near
#: ``mean x ratio`` no matter how skewed the partition-level split is.
REBALANCE_SKEW_CAP = 1.5


def _pass_plan(algorithm: str):
    """The registered PassPlan for ``algorithm`` (lazy, cycle-free)."""
    from repro.parallel.engine.stages import plan_for

    plan = plan_for(algorithm)
    if plan is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}: no registered pass plan"
        )
    return plan


@dataclass(frozen=True)
class JoinPlan:
    """The tunable knobs one real join runs with."""

    batch_records: int = 4096
    irun: int = 4096
    buckets: int = 16
    tsize: int = 64
    #: Bucketed plans only: flush bucket groups to chunked spill files
    #: whenever this many objects are retained.  ``None`` = single flush
    #: at end of scan (the fast path, byte-identical to the ungoverned
    #: backend).
    spill_threshold: Optional[int] = None
    #: Hybrid hash only: buckets joined in place during the partition
    #: scan instead of spilled.  Clamped to ``buckets - 1`` so at least
    #: one bucket always flows through the probe pass.
    resident_buckets: int = 4
    #: Which stage-kernel implementation the run executes: ``"vector"``
    #: (numpy columnar) or ``"scalar"`` (per-record structs).  Output is
    #: bit-identical either way; the vector multi-run merge holds one
    #: chunk per run, so dropping to scalar is the ladder's last rung.
    kernel_mode: str = "vector"
    #: Per-partition size rebalancing in the executor: ``"off"`` (never
    #: shard), ``"auto"`` (shard when the partition-size ratio crosses
    #: the executor's threshold), ``"on"`` (force-shard every non-empty
    #: partition of the shardable stages — the bit-identity proof mode).
    rebalance: str = "auto"
    #: Partitioning strategy override for bucketed plans (``"hash"``,
    #: ``"radix"``, ``"learned"``).  ``None`` leaves each plan's declared
    #: strategy; the ladder's strategy→hash rung sets it explicitly.
    partitioner: Optional[str] = None

    def effective_resident_buckets(self) -> int:
        return max(0, min(self.resident_buckets, self.buckets - 1))

    def effective_partitioner(self, algorithm: str) -> Optional[str]:
        """The strategy the partition stage will actually run, or None
        when the plan has no partitioner-bearing stage."""
        pass_plan = _pass_plan(algorithm)
        for stage in pass_plan.stages:
            declared = getattr(stage, "partitioner", None)
            if declared is not None:
                return self.partitioner or declared
        return None

    def as_dict(self) -> dict:
        return {
            "batch_records": self.batch_records,
            "irun": self.irun,
            "buckets": self.buckets,
            "tsize": self.tsize,
            "spill_threshold": self.spill_threshold,
            "resident_buckets": self.resident_buckets,
            "kernel_mode": self.kernel_mode,
            "rebalance": self.rebalance,
            "partitioner": self.partitioner,
        }

    def degraded(self, algorithm: str, resource: str = "memory") -> "JoinPlan":
        """One rung down the ladder; returns ``self`` when exhausted.

        The rungs are chosen by the stage kinds in the algorithm's pass
        plan, cheapest-loss first: shrink the sort heap (more, smaller
        runs), bound then shrink the partition buffer (chunked spilling),
        shrink the batches, evict resident buckets (hybrid degenerates
        toward grace), and finally split buckets finer so the probe-side
        tables shrink too.

        Disk pressure has no plan-level remedy beyond throttling batch
        sizes (spill capacities are workload-determined), so every
        algorithm degrades the same way for ``resource="disk"``.
        """
        if resource != "memory":
            if self.batch_records > MIN_BATCH_RECORDS:
                return self._with_batch(self.batch_records // 2)
            return self
        pass_plan = _pass_plan(algorithm)
        if self.rebalance == "off" and any(
            stage.rebalance is not None for stage in pass_plan.stages
        ):
            # Free rung: splitting a skew-bloated partition into shards
            # caps the worst task's inbound (and so its retained buffer)
            # without shrinking any knob.  Never fires for default plans,
            # which already start at "auto".
            return replace(self, rebalance="auto")
        buffered = any(
            getattr(stage, "buffered", False) for stage in pass_plan.stages
        )
        resident_join = any(
            getattr(stage, "resident_join", False)
            for stage in pass_plan.stages
        )
        if pass_plan.has_kind("sort-run") and self.irun > MIN_IRUN:
            return replace(self, irun=max(MIN_IRUN, self.irun // 2))
        if buffered:
            if self.spill_threshold is None:
                return replace(
                    self,
                    spill_threshold=max(
                        MIN_BATCH_RECORDS, 4 * self.batch_records
                    ),
                )
            if self.spill_threshold > self.batch_records:
                return replace(
                    self,
                    spill_threshold=max(
                        self.batch_records, self.spill_threshold // 2
                    ),
                )
        if self.batch_records > MIN_BATCH_RECORDS:
            return self._with_batch(self.batch_records // 2)
        strategy = self.effective_partitioner(algorithm)
        if strategy is not None and strategy != "hash":
            # Partitioner scratch (radix digit lanes, the learned CDF
            # tables and per-batch span lanes) is pure overhead beyond
            # the hash baseline: falling back reclaims it, at the cost
            # of the cache-budgeted scatter or of re-exposing pointer
            # skew to the probe-side rebalancer.
            return replace(self, partitioner="hash")
        if resident_join and self.effective_resident_buckets() > 0:
            return replace(
                self, resident_buckets=self.effective_resident_buckets() // 2
            )
        if pass_plan.has_kind("probe") and self.buckets < MAX_BUCKETS:
            return replace(self, buckets=min(MAX_BUCKETS, self.buckets * 2))
        if self.kernel_mode == "vector":
            # Last resort: give up the columnar kernels' per-run merge
            # chunks and column staging.  Output is unchanged, so this
            # rung trades only speed for the final slice of memory.
            return replace(self, kernel_mode="scalar")
        return self

    def _with_batch(self, batch_records: int) -> "JoinPlan":
        batch_records = max(MIN_BATCH_RECORDS, batch_records)
        threshold = self.spill_threshold
        if threshold is not None:
            threshold = max(batch_records, min(threshold, 4 * batch_records))
        return replace(
            self, batch_records=batch_records, spill_threshold=threshold
        )


@dataclass(frozen=True)
class FootprintEstimate:
    """What the model expects one join to cost in memory and disk."""

    #: Per-worker retained-object high-water mark, per pass (bytes),
    #: keyed by the pass plan's stage labels.
    per_pass_mem_bytes: Dict[str, float] = field(default_factory=dict)
    #: Max of the above — the number a worker budget is checked against.
    mem_high_water_bytes: float = 0.0
    #: All workers together (disks x per-worker high water).
    total_mem_bytes: float = 0.0
    #: Full on-disk reservation: base relations + spills + pairs.
    disk_bytes: float = 0.0
    #: The spill (temporary redistribution) share of ``disk_bytes``.
    spill_bytes: float = 0.0
    #: Model diagnostics (Ylru faults, urn premature replacements, ...).
    details: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "mem_high_water_bytes": int(self.mem_high_water_bytes),
            "total_mem_bytes": int(self.total_mem_bytes),
            "disk_bytes": int(self.disk_bytes),
            "spill_bytes": int(self.spill_bytes),
            "per_pass_mem_bytes": {
                label: int(value)
                for label, value in self.per_pass_mem_bytes.items()
            },
            "details": dict(self.details),
        }


def _segment_bytes(capacity: float, record_bytes: int) -> float:
    """On-disk reservation of one segment: header page + page-rounded data."""
    records = max(1, math.ceil(capacity))
    data = records * record_bytes
    return PAGE_SIZE + math.ceil(data / PAGE_SIZE) * PAGE_SIZE


def predict_footprint(
    algorithm: str,
    workload,
    plan: JoinPlan,
    worker_mem_budget_bytes: Optional[int] = None,
) -> FootprintEstimate:
    """The model's memory/disk footprint for ``algorithm`` under ``plan``.

    ``workload`` is duck-typed: ``disks``, ``spec.s_bytes`` and
    ``relation_parameters()`` (which carries the *measured* skew, so a
    skewed pointer distribution inflates the worst partition exactly the
    way the paper's analyses do).  The estimate is assembled stage by
    stage from the algorithm's registered pass plan, so its ``per_pass``
    labels match the executor's.
    """
    pass_plan = _pass_plan(algorithm)
    relations = workload.relation_parameters()
    disks = workload.disks
    machine = MachineParameters(disks=disks)
    r = relations.r_bytes
    s = relations.s_bytes
    # Scan-join plans interleave probes with the scan; everything else
    # runs synchronized redistribution passes behind barriers.
    synchronized = not pass_plan.has_kind("scan-join")
    geometry = (
        synchronized_geometry(machine, relations)
        if synchronized
        else nested_loops_geometry(machine, relations)
    )
    r_i = geometry.r_i
    # Worst-partition inbound for the redistribution algorithms: the
    # barrier makes the most-skewed partition gate every pass.
    inbound = max(1.0, geometry.rs_i * relations.skew)
    # With rebalancing active the executor shards any partition whose
    # inbound exceeds REBALANCE_SKEW_CAP x the mean, so the worst *task*
    # of the shardable record/key stages sees a capped share.  Disk
    # totals and run counts are unchanged — sharding moves work, not
    # bytes.  Probe stages keep the raw skew: bucket shards bound task
    # *counts*, but the single worst bucket's table is indivisible.
    skew_eff = (
        min(relations.skew, REBALANCE_SKEW_CAP)
        if plan.rebalance != "off"
        else relations.skew
    )
    inbound_balanced = max(1.0, geometry.rs_i * skew_eff)
    batch = max(1, min(plan.batch_records, math.ceil(r_i)))
    per_pass: Dict[str, float] = {}
    details: Dict[str, float] = {}
    spill_bytes = 0.0
    pairs_segments = 0

    base_bytes = disks * (
        _segment_bytes(r_i, r) + _segment_bytes(geometry.s_i, s)
    )
    frames = (
        worker_mem_budget_bytes / machine.page_size
        if worker_mem_budget_bytes
        else geometry.pages_r_i + geometry.pages_s_i
    )

    for stage in pass_plan.stages:
        if stage.emits in ("pairs", "both"):
            pairs_segments += 1
        if stage.kind == "scan-join":
            # Each batch retains its decoded R objects plus the
            # dereferenced S objects; worst case every pointer resolves
            # locally.
            per_pass[stage.label] = batch * r + batch * s
            if stage.spills:
                spill_bytes += disks * (disks - 1) * _segment_bytes(r_i, r)
            if "ylru_fault_pages" not in details:
                try:
                    details["ylru_fault_pages"] = ylru(
                        n_tuples=int(geometry.s_i) or 1,
                        t_pages=math.ceil(geometry.pages_s_i) or 1,
                        i_keys=int(geometry.s_i) or 1,
                        b_frames=max(1.0, frames),
                        x_lookups=geometry.r_ii,
                    )
                except ValueError:
                    details["ylru_fault_pages"] = 0.0
        elif stage.kind == "partition":
            if not stage.buffered:
                per_pass[stage.label] = batch * r
                spill_bytes += disks * disks * _segment_bytes(r_i, r)
                continue
            if plan.spill_threshold is None:
                retained = r_i
            else:
                retained = min(r_i, plan.spill_threshold + batch)
            estimate = max(retained, batch) * r
            if stage.resident_join and plan.effective_resident_buckets() > 0:
                # Resident buckets dereference their S partners during
                # the scan: one chunk of S objects rides on top of the
                # retained R buffer.
                estimate += batch * s
            strategy = plan.partitioner or getattr(
                stage, "partitioner", "hash"
            )
            if strategy != "hash":
                # Strategy-specific scratch (radix pass lanes, learned
                # boundary tables) priced by the partitioner layer
                # itself; lazy import keeps this module storage-free.
                from repro.parallel.engine.partition import (
                    partition_scratch_bytes,
                )

                estimate += partition_scratch_bytes(
                    strategy,
                    disks=disks,
                    buckets=plan.buckets,
                    batch=batch,
                    retained=max(retained, batch),
                )
            per_pass[stage.label] = estimate
            per_contributor = r_i / disks  # one contributor's share/target
            chunks = (
                1
                if plan.spill_threshold is None
                else max(1, math.ceil(r_i / plan.spill_threshold))
            )
            spill_bytes += disks * disks * (
                _segment_bytes(per_contributor, r) + (chunks - 1) * PAGE_SIZE
            )
        elif stage.kind == "sort-run":
            irun_eff = max(1, min(plan.irun, math.ceil(inbound)))
            n_runs = max(1, math.ceil(inbound / irun_eff))
            # Run building holds at most irun + one trailing batch before
            # a flush.
            per_pass[stage.label] = min(inbound_balanced, irun_eff + batch) * r
            spill_bytes += disks * (
                _segment_bytes(inbound, r) + (n_runs - 1) * PAGE_SIZE
            )
            details["merge_runs"] = float(n_runs)
        elif stage.kind == "merge":
            # Merging streams run batches lazily and retains only the
            # re-batched output plus its dereferenced S objects.  The
            # merged stream re-batches against *inbound* (which skew can
            # push past r_i), so its batch clamp must use inbound.
            merge_batch = max(
                1, min(plan.batch_records, math.ceil(inbound_balanced))
            )
            per_pass[stage.label] = merge_batch * (r + s)
            n_runs = details.get("merge_runs", 1.0)
            if plan.kernel_mode == "vector" and n_runs > 1:
                # The vector k-way merge buffers one chunk per run
                # (chunks never exceed the run length, so clamp by the
                # effective run size too).
                irun_eff = max(1, min(plan.irun, math.ceil(inbound)))
                per_pass[stage.label] += (
                    n_runs * min(merge_batch, irun_eff) * r
                )
        elif stage.kind == "probe":
            # Range bucketing splits near-evenly; allow 3 sigma of
            # multinomial wobble over the mean bucket population.  The
            # mean holds for hybrid too: the spilled fraction of inbound
            # spreads over the non-resident fraction of the buckets.
            bucket_mean = inbound / plan.buckets
            bucket_high = min(
                inbound, bucket_mean + 3.0 * math.sqrt(bucket_mean) + 1
            )
            # Dereference chunks are carved from one bucket, so they are
            # bounded by the bucket population as well as the batch knob.
            probe_chunk = max(
                1, min(plan.batch_records, math.ceil(bucket_high))
            )
            per_pass[stage.label] = bucket_high * r + probe_chunk * s
            if "grace_premature_replacements" not in details:
                try:
                    objects_per_block = max(1, machine.page_size // r)
                    details["grace_premature_replacements"] = (
                        grace_thrashing_estimate(
                            hashed_objects=int(geometry.r_ii) or 1,
                            buckets=plan.buckets,
                            frames=max(1, int(frames)),
                            disks=disks,
                            objects_per_block=objects_per_block,
                        ).premature_replacements
                    )
                except ValueError:
                    details["grace_premature_replacements"] = 0.0
        else:  # pragma: no cover - registry validates stage kinds
            raise ValueError(f"no footprint model for stage kind {stage.kind!r}")

    pairs_bytes = pairs_segments * (
        disks * PAGE_SIZE
        + _segment_bytes(relations.r_objects, PAIR_RECORD_BYTES)
    )

    mem_high_water = max(per_pass.values())
    return FootprintEstimate(
        per_pass_mem_bytes=per_pass,
        mem_high_water_bytes=mem_high_water,
        total_mem_bytes=disks * mem_high_water,
        disk_bytes=base_bytes + spill_bytes + pairs_bytes,
        spill_bytes=spill_bytes,
        details=details,
    )


def fit_plan(
    algorithm: str,
    workload,
    plan: JoinPlan,
    worker_mem_budget_bytes: int,
) -> Tuple[JoinPlan, int, FootprintEstimate]:
    """Walk the ladder until the predicted high-water mark fits the budget.

    Returns ``(plan, rungs_descended, estimate)``.  If even the ladder's
    floor does not fit, the floored plan is returned — the runtime meter
    will then catch any true overrun and the runner decides whether to
    keep degrading or raise.
    """
    target = FIT_MARGIN * worker_mem_budget_bytes
    steps = 0
    estimate = predict_footprint(
        algorithm, workload, plan, worker_mem_budget_bytes
    )
    while estimate.mem_high_water_bytes > target:
        lowered = plan.degraded(algorithm, "memory")
        if lowered == plan:
            break
        plan = lowered
        steps += 1
        estimate = predict_footprint(
            algorithm, workload, plan, worker_mem_budget_bytes
        )
    return plan, steps, estimate
