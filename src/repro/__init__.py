"""repro — Parallel Pointer-Based Join Algorithms in Memory-Mapped Environments.

A reproduction of Buhr, Goel, Nishimura & Ragde (ICDE 1996): the validated
analytical cost model, the three parallel pointer-based join algorithms
(nested loops, sort-merge, Grace) executing on a simulated memory-mapped
multiprocessor, a real ``mmap``-backed single-level store, and the harness
that regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import (
        WorkloadSpec, generate_workload, MemoryParameters,
        JoinEnvironment, make_algorithm, verify_pairs,
    )

    workload = generate_workload(WorkloadSpec.paper_validation(scale=0.05), disks=4)
    memory = MemoryParameters.from_fractions(workload.relation_parameters(), 0.05)
    result = make_algorithm("grace").run(JoinEnvironment(workload, memory))
    verify_pairs(workload, result.pairs)
    print(result.describe())
"""

from repro.harness import (
    all_figures,
    calibrated_machine_parameters,
    figure_1a,
    figure_1b,
    figure_5a,
    figure_5b,
    figure_5c,
    run_memory_sweep,
)
from repro.joins import (
    ALGORITHMS,
    JoinEnvironment,
    JoinRunResult,
    ParallelGraceJoin,
    ParallelNestedLoopsJoin,
    ParallelSortMergeJoin,
    make_algorithm,
    reference_join,
    verify_pairs,
)
from repro.model import (
    JoinCostReport,
    MachineParameters,
    MemoryParameters,
    RelationParameters,
    grace_cost,
    nested_loops_cost,
    sort_merge_cost,
)
from repro.sim import SimConfig, SimMachine
from repro.workload import Workload, WorkloadSpec, generate_workload

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "JoinCostReport",
    "JoinEnvironment",
    "JoinRunResult",
    "MachineParameters",
    "MemoryParameters",
    "ParallelGraceJoin",
    "ParallelNestedLoopsJoin",
    "ParallelSortMergeJoin",
    "RelationParameters",
    "SimConfig",
    "SimMachine",
    "Workload",
    "WorkloadSpec",
    "all_figures",
    "calibrated_machine_parameters",
    "figure_1a",
    "figure_1b",
    "figure_5a",
    "figure_5b",
    "figure_5c",
    "generate_workload",
    "grace_cost",
    "make_algorithm",
    "nested_loops_cost",
    "reference_join",
    "run_memory_sweep",
    "sort_merge_cost",
    "verify_pairs",
]
