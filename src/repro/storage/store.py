"""A directory of mapped segments: the workload's on-disk home.

:class:`Store` lays a workload out the way the paper's testbed does — one R
partition and one S partition per (simulated) disk directory — and manages
the temporary areas the join algorithms create.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import List

try:  # pragma: no cover - POSIX-only; without flock every tmp is swept
    import fcntl as _fcntl
except ImportError:  # pragma: no cover
    _fcntl = None

from repro.governor.budget import store_usage_bytes
from repro.storage.relation import (
    RRelationFile,
    SRelationFile,
    write_r_partition,
    write_s_partition,
)
from repro.storage.segment import MappedSegment, StorageError, scrub_segment
from repro.workload.generator import Workload


class Store:
    """A root directory holding one subdirectory per disk.

    ``clean_orphans=True`` sweeps ``*.seg.tmp`` files — unpublished
    segments whose writer died before the atomic rename — on open.  Only
    the *driver* of a join should pass it: workers construct a Store per
    task while sibling workers are still writing their own ``.tmp``
    files, so cleaning from a worker would race live writers.
    """

    def __init__(
        self, root: str | Path, disks: int, clean_orphans: bool = False
    ) -> None:
        if disks <= 0:
            raise StorageError("a store needs at least one disk directory")
        self.root = Path(root)
        self.disks = disks
        for i in range(disks):
            self.disk_dir(i).mkdir(parents=True, exist_ok=True)
        if clean_orphans:
            self.cleanup_orphans()

    def disk_dir(self, disk: int) -> Path:
        if not 0 <= disk < self.disks:
            raise StorageError(f"disk {disk} outside [0, {self.disks})")
        return self.root / f"disk{disk}"

    def path(self, disk: int, name: str) -> Path:
        return self.disk_dir(disk) / f"{name}.seg"

    # ------------------------------------------------------------ workload

    def materialize(self, workload: Workload) -> None:
        """Write a workload's R and S partitions into the store."""
        if workload.disks != self.disks:
            raise StorageError(
                f"workload has {workload.disks} partitions, store has "
                f"{self.disks} disks"
            )
        for i in range(self.disks):
            write_r_partition(
                self.path(i, "R"), workload.r_partitions[i], workload.spec.r_bytes
            )
            write_s_partition(
                self.path(i, "S"), workload.s_partition(i), workload.spec.s_bytes
            )

    def open_r(self, disk: int) -> RRelationFile:
        return RRelationFile.open(self.path(disk, "R"))

    def open_s(self, disk: int) -> SRelationFile:
        return SRelationFile.open(self.path(disk, "S"))

    # ---------------------------------------------------------- temporaries

    def create_temp(self, disk: int, name: str, capacity: int, record_bytes: int) -> Path:
        path = self.path(disk, name)
        segment = MappedSegment.create(path, capacity, record_bytes)
        segment.close()
        return path

    def delete_temp(self, disk: int, name: str) -> None:
        MappedSegment.delete(self.path(disk, name))

    def temp_paths(self, disk: int) -> List[Path]:
        reserved = {"R.seg", "S.seg"}
        return [
            p for p in sorted(self.disk_dir(disk).glob("*.seg"))
            if p.name not in reserved
        ]

    def cleanup_orphans(self) -> int:
        """Remove unpublished ``*.seg.tmp`` files left by *dead* writers.

        Returns how many were removed.  A tmp file whose creator is still
        alive holds an ``flock`` on it (taken in ``MappedSegment.create``);
        the sweep probes that lock and skips live tmps, so a concurrent
        writer — e.g. a sibling worker mid-pass while the driver cleans up
        another attempt — never loses its unpublished output.  A crashed
        writer's lock died with its fd, so its orphans remain sweepable.
        """
        removed = 0
        for disk in range(self.disks):
            for path in self.disk_dir(disk).glob("*.seg.tmp"):
                if _tmp_writer_alive(path):
                    continue
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def cleanup_temps(self) -> None:
        for disk in range(self.disks):
            for path in self.temp_paths(disk):
                path.unlink()

    def scrub(self, remove: bool = False) -> dict:
        """Fully verify every segment in the store (header + payload CRC).

        Where :meth:`cleanup_orphans` removes files that *obviously*
        never finished, scrub proves the published ones still hold the
        bytes they were closed with.  Returns a report::

            {"scanned": int, "verified": int, "legacy": int,
             "failed": [{"path": str, "problem": str}, ...],
             "removed": [str, ...]}

        ``legacy`` counts structurally-sound segments written before the
        checksum footer existed (nothing to verify against).  With
        ``remove=True`` failing segments are deleted — the warm-cache
        policy: a corrupt cached artifact is strictly worse than a cold
        one, because a recompute is correct and a corrupt serve is not.
        """
        report: dict = {
            "scanned": 0, "verified": 0, "legacy": 0,
            "failed": [], "removed": [],
        }
        for disk in range(self.disks):
            for path in sorted(self.disk_dir(disk).glob("*.seg")):
                report["scanned"] += 1
                try:
                    status = scrub_segment(path)
                except StorageError as error:
                    report["failed"].append(
                        {"path": str(path), "problem": str(error)}
                    )
                    if remove:
                        path.unlink(missing_ok=True)
                        report["removed"].append(str(path))
                    continue
                report[status] += 1
        return report

    def usage_bytes(self) -> int:
        """The store's current disk reservation (summed segment sizes)."""
        return store_usage_bytes(self.root)

    def destroy(self) -> None:
        """Remove the whole store from disk."""
        shutil.rmtree(self.root, ignore_errors=True)


def _tmp_writer_alive(path: Path) -> bool:
    """Whether some live process still holds the create-time flock."""
    if _fcntl is None:
        return False
    try:
        fd = os.open(path, os.O_RDWR)
    except OSError:
        return False  # already gone — nothing to sweep either
    try:
        try:
            _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
        except OSError:
            return True  # EWOULDBLOCK: the writer's lock is still held
        _fcntl.flock(fd, _fcntl.LOCK_UN)
        return False
    finally:
        os.close(fd)
