"""A persistent B-tree in one memory-mapped segment (paper §2.1).

The paper's opening argument rests on µDatabase's claim that "data
structures such as B-Trees, R-Trees and graph data structures can be
implemented as efficiently and effectively in this environment as in a
traditional environment using explicit I/O".  This module demonstrates the
claim concretely: a B-tree whose nodes are fixed-size records in a
:class:`~repro.storage.segment.MappedSegment`, whose child pointers are
plain record indices — valid the instant the segment is mapped, with no
swizzling or translation — and whose every access is an ordinary mapped
read or write (the OS pager does all I/O).

Keys and values are unsigned 64-bit integers; inserting an existing key
updates its value in place.  One node occupies one 4K record, the natural
unit of the paging environment.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.storage.segment import MappedSegment, StorageError

NODE_BYTES = 4096
# Node header: is_leaf (u8), pad (u8), count (u16), pad (u32).
_HEADER = struct.Struct("<BBHI")
# Metadata record (record 0): magic, root index, size, node count.
_META = struct.Struct("<8sQQQ")
_META_MAGIC = b"UDBBTREE"
_ENTRY = struct.Struct("<QQ")  # key, value-or-child

# Capacity: entries per node.  Internal nodes hold `count` keys and
# `count + 1` children, so they need one extra slot.
_SLOT_BYTES = _ENTRY.size
MAX_KEYS = (NODE_BYTES - _HEADER.size - _SLOT_BYTES) // (2 * _SLOT_BYTES)
_MIN_KEYS = MAX_KEYS // 2


class BTreeError(StorageError):
    """Raised for B-tree misuse or corruption."""


@dataclass
class _Node:
    """Decoded node, written back explicitly after mutation."""

    index: int
    is_leaf: bool
    keys: List[int]
    # Leaves: values[i] pairs with keys[i].  Internal: children has
    # len(keys) + 1 entries.
    values: List[int]
    children: List[int]


class PersistentBTree:
    """A B-tree of u64 keys/values stored in a mapped segment."""

    def __init__(self, segment: MappedSegment) -> None:
        self._segment = segment
        self._root_index, self._size, self._node_count = self._read_meta()

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, path: str | os.PathLike, capacity_nodes: int = 4096) -> "PersistentBTree":
        """Create a new tree (newMap + an empty root leaf)."""
        if capacity_nodes < 2:
            raise BTreeError("need room for the metadata record and a root")
        segment = MappedSegment.create(path, capacity_nodes, NODE_BYTES)
        tree = object.__new__(cls)
        tree._segment = segment
        tree._root_index = 1
        tree._size = 0
        tree._node_count = 2  # metadata record + root leaf
        segment.write_record(0, _META.pack(_META_MAGIC, 1, 0, 2) + b"\x00" * (NODE_BYTES - _META.size))
        tree._write_node(_Node(index=1, is_leaf=True, keys=[], values=[], children=[]))
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, path: str | os.PathLike) -> "PersistentBTree":
        """Re-map an existing tree; pointers need no fixing up."""
        segment = MappedSegment.open(path)
        if segment.layout.record_bytes != NODE_BYTES:
            segment.close()
            raise BTreeError(f"{path} does not hold {NODE_BYTES}-byte nodes")
        return cls(segment)

    def close(self) -> None:
        self._write_meta()
        self._segment.close()

    def __enter__(self) -> "PersistentBTree":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._size

    def search(self, key: int) -> Optional[int]:
        """The value stored under ``key``, or None."""
        node = self._read_node(self._root_index)
        while True:
            position = _lower_bound(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                if node.is_leaf:
                    return node.values[position]
                # Internal separators duplicate a leaf key: descend right.
                node = self._read_node(node.children[position + 1])
                continue
            if node.is_leaf:
                return None
            node = self._read_node(node.children[position])

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, value) pairs in ascending key order."""
        yield from self._walk(self._root_index)

    def range(self, low: int, high: int) -> Iterator[Tuple[int, int]]:
        """Pairs with ``low <= key <= high``, ascending."""
        if low > high:
            return
        for key, value in self.items():
            if key > high:
                return
            if key >= low:
                yield (key, value)

    def _walk(self, index: int) -> Iterator[Tuple[int, int]]:
        node = self._read_node(index)
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for position, child in enumerate(node.children):
            yield from self._walk(child)
            if position < len(node.keys):
                # Separator keys are copies of leaf keys; skip them here,
                # the leaf emits the authoritative pair.
                continue

    # ------------------------------------------------------------- updates

    def insert(self, key: int, value: int) -> None:
        """Insert or update one pair."""
        if not 0 <= key < 2**64 or not 0 <= value < 2**64:
            raise BTreeError("keys and values must fit in u64")
        root = self._read_node(self._root_index)
        if len(root.keys) >= MAX_KEYS:
            # Split the root: the tree grows upward.
            new_root = _Node(
                index=self._allocate_node(),
                is_leaf=False,
                keys=[],
                values=[],
                children=[root.index],
            )
            self._split_child(new_root, 0)
            self._root_index = new_root.index
            self._write_meta()
            root = new_root
        inserted = self._insert_nonfull(root, key, value)
        if inserted:
            self._size += 1
            self._write_meta()

    def _insert_nonfull(self, node: _Node, key: int, value: int) -> bool:
        while True:
            position = _lower_bound(node.keys, key)
            if node.is_leaf:
                if position < len(node.keys) and node.keys[position] == key:
                    node.values[position] = value
                    self._write_node(node)
                    return False
                node.keys.insert(position, key)
                node.values.insert(position, value)
                self._write_node(node)
                return True
            if position < len(node.keys) and node.keys[position] == key:
                position += 1
            child = self._read_node(node.children[position])
            if len(child.keys) >= MAX_KEYS:
                self._split_child(node, position)
                # Re-aim after the split introduced a new separator.  The
                # separator is the first key of the right sibling (B+-style
                # leaf split), so equality also goes right.
                if key >= node.keys[position]:
                    position += 1
                child = self._read_node(node.children[position])
            node = child

    def _split_child(self, parent: _Node, position: int) -> None:
        """Split the full child at ``position``; parent must have room."""
        full = self._read_node(parent.children[position])
        middle = len(full.keys) // 2
        sibling = _Node(
            index=self._allocate_node(),
            is_leaf=full.is_leaf,
            keys=full.keys[middle + (0 if full.is_leaf else 1):],
            values=full.values[middle:] if full.is_leaf else [],
            children=[] if full.is_leaf else full.children[middle + 1:],
        )
        separator = full.keys[middle]
        if full.is_leaf:
            # B+-style leaf split: the separator stays in the right leaf.
            sibling.keys = full.keys[middle:]
            sibling.values = full.values[middle:]
            full.keys = full.keys[:middle]
            full.values = full.values[:middle]
        else:
            full.keys = full.keys[:middle]
            full.children = full.children[: middle + 1]
        parent.keys.insert(position, separator)
        parent.children.insert(position + 1, sibling.index)
        self._write_node(full)
        self._write_node(sibling)
        self._write_node(parent)

    def delete(self, key: int) -> bool:
        """Remove one key; returns whether it was present.

        Classic rebalancing: an underflowing node borrows from a sibling
        when one can spare a key, otherwise merges with it.  Merged nodes'
        records become unreferenced (space within the segment is not
        reclaimed — the paper's temporary areas behave the same way).
        """
        root = self._read_node(self._root_index)
        removed = self._delete_from(root, key)
        if removed:
            root = self._read_node(self._root_index)
            if not root.is_leaf and not root.keys:
                # The root emptied out: the tree shrinks downward.
                self._root_index = root.children[0]
            self._size -= 1
            self._write_meta()
        return removed

    def _delete_from(self, node: _Node, key: int) -> bool:
        if node.is_leaf:
            position = _lower_bound(node.keys, key)
            if position >= len(node.keys) or node.keys[position] != key:
                return False
            del node.keys[position]
            del node.values[position]
            self._write_node(node)
            return True

        position = _lower_bound(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            position += 1
        child = self._read_node(node.children[position])
        removed = self._delete_from(child, key)
        if removed:
            child = self._read_node(node.children[position])
            if len(child.keys) < _MIN_KEYS:
                self._rebalance(node, position)
        return removed

    def _rebalance(self, parent: _Node, position: int) -> None:
        """Restore minimum occupancy of ``parent.children[position]``."""
        child = self._read_node(parent.children[position])
        left = (
            self._read_node(parent.children[position - 1])
            if position > 0
            else None
        )
        right = (
            self._read_node(parent.children[position + 1])
            if position + 1 < len(parent.children)
            else None
        )

        if left is not None and len(left.keys) > _MIN_KEYS:
            if child.is_leaf:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[position - 1] = child.keys[0]
            else:
                child.keys.insert(0, parent.keys[position - 1])
                child.children.insert(0, left.children.pop())
                parent.keys[position - 1] = left.keys.pop()
            self._write_node(left)
            self._write_node(child)
            self._write_node(parent)
            return

        if right is not None and len(right.keys) > _MIN_KEYS:
            if child.is_leaf:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[position] = right.keys[0]
            else:
                child.keys.append(parent.keys[position])
                child.children.append(right.children.pop(0))
                parent.keys[position] = right.keys.pop(0)
            self._write_node(right)
            self._write_node(child)
            self._write_node(parent)
            return

        # No sibling can spare a key: merge with one.
        if left is not None:
            receiver, giver, separator_at = left, child, position - 1
        else:
            receiver, giver, separator_at = child, right, position
        if receiver.is_leaf:
            receiver.keys.extend(giver.keys)
            receiver.values.extend(giver.values)
        else:
            receiver.keys.append(parent.keys[separator_at])
            receiver.keys.extend(giver.keys)
            receiver.children.extend(giver.children)
        del parent.keys[separator_at]
        del parent.children[separator_at + 1]
        self._write_node(receiver)
        self._write_node(parent)

    # ------------------------------------------------------- node storage

    def _allocate_node(self) -> int:
        index = self._node_count
        if index >= self._segment.capacity:
            raise BTreeError(
                f"tree full: {self._segment.capacity} node capacity reached"
            )
        self._node_count += 1
        # Nodes are written out of allocation order during splits, so the
        # slot must be declared valid before the sparse write lands.
        self._segment.reserve(self._node_count)
        return index

    def _read_node(self, index: int) -> _Node:
        data = self._segment.read_record(index)
        is_leaf, _, count, _ = _HEADER.unpack_from(data)
        keys: List[int] = []
        payload: List[int] = []
        offset = _HEADER.size
        for _ in range(count):
            key, extra = _ENTRY.unpack_from(data, offset)
            keys.append(key)
            payload.append(extra)
            offset += _ENTRY.size
        if is_leaf:
            return _Node(index=index, is_leaf=True, keys=keys, values=payload, children=[])
        (last_child,) = struct.unpack_from("<Q", data, offset)
        return _Node(
            index=index,
            is_leaf=False,
            keys=keys,
            values=[],
            children=payload + [last_child],
        )

    def _write_node(self, node: _Node) -> None:
        count = len(node.keys)
        if count > MAX_KEYS + 1:
            raise BTreeError(f"node {node.index} overflow ({count} keys)")
        parts = [_HEADER.pack(1 if node.is_leaf else 0, 0, count, 0)]
        payload = node.values if node.is_leaf else node.children[:count]
        for key, extra in zip(node.keys, payload):
            parts.append(_ENTRY.pack(key, extra))
        if not node.is_leaf:
            parts.append(struct.pack("<Q", node.children[count]))
        blob = b"".join(parts)
        self._segment.write_record(node.index, blob + b"\x00" * (NODE_BYTES - len(blob)))

    def _read_meta(self) -> Tuple[int, int, int]:
        try:
            data = self._segment.read_record(0)
        except StorageError as exc:
            raise BTreeError("segment has no metadata record") from exc
        magic, root, size, nodes = _META.unpack_from(data)
        if magic != _META_MAGIC:
            raise BTreeError("segment does not contain a B-tree")
        return root, size, nodes

    def _write_meta(self) -> None:
        self._segment.write_record(
            0,
            _META.pack(_META_MAGIC, self._root_index, self._size, self._node_count)
            + b"\x00" * (NODE_BYTES - _META.size),
        )


def _lower_bound(keys: List[int], key: int) -> int:
    """First position whose key is >= the probe."""
    import bisect

    return bisect.bisect_left(keys, key)
