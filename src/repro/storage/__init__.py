"""Real mmap-backed single-level store (the µDatabase substrate)."""

from repro.storage.btree import MAX_KEYS, BTreeError, PersistentBTree
from repro.storage.layout import LayoutError, RecordLayout
from repro.storage.relation import (
    PAIR_RECORD_BYTES,
    PairsFile,
    RRelationFile,
    SRelationFile,
    iter_pairs_file,
    read_pairs,
    write_r_partition,
    write_s_partition,
)
from repro.storage.segment import (
    MappedSegment,
    StorageError,
    timed_delete_map,
    timed_new_map,
    timed_open_map,
)
from repro.storage.store import Store

__all__ = [
    "BTreeError",
    "LayoutError",
    "MAX_KEYS",
    "MappedSegment",
    "PAIR_RECORD_BYTES",
    "PairsFile",
    "PersistentBTree",
    "RRelationFile",
    "RecordLayout",
    "SRelationFile",
    "StorageError",
    "Store",
    "iter_pairs_file",
    "read_pairs",
    "timed_delete_map",
    "timed_new_map",
    "timed_open_map",
    "write_r_partition",
    "write_s_partition",
]
