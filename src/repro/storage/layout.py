"""Fixed-size record layout for the mmap-backed single-level store.

The paper's µDatabase stores data "exactly positioned": objects are written
at fixed offsets and pointers are plain offsets that need no swizzling when
the segment is mapped back in.  Records here are fixed-size (128 bytes in
the paper's experiments): three little-endian u64 header fields followed by
zero padding, so a record never straddles the 4K page boundary used by the
OS pager.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.records import RObject, SObject

_HEADER = struct.Struct("<QQQ")


class LayoutError(ValueError):
    """Raised for invalid record layouts."""


@dataclass(frozen=True)
class RecordLayout:
    """Fixed-size record encoding for R and S objects."""

    record_bytes: int = 128

    def __post_init__(self) -> None:
        if self.record_bytes < _HEADER.size:
            raise LayoutError(
                f"record_bytes must be at least {_HEADER.size} "
                f"(got {self.record_bytes})"
            )
        # One Struct spanning the whole record (header + `x` pad bytes) so
        # iter_unpack/pack_into stride record-by-record over a raw buffer
        # with no per-record slicing, copying, or method dispatch.
        object.__setattr__(
            self,
            "_record",
            struct.Struct(f"<QQQ{self.record_bytes - _HEADER.size}x"),
        )
        # Structured dtype spanning the whole record: the three u64 header
        # fields by name, itemsize padded to record_bytes — so a zero-copy
        # ``np.frombuffer`` view over a mapped batch strides records the
        # same way the Struct does, and ``np.zeros`` of it reproduces the
        # zero padding bit-for-bit.
        object.__setattr__(
            self,
            "_np_dtype",
            _np.dtype(
                {
                    "names": ("f0", "f1", "f2"),
                    "formats": ("<u8", "<u8", "<u8"),
                    "offsets": (0, 8, 16),
                    "itemsize": self.record_bytes,
                }
            )
            if _np is not None
            else None,
        )

    @property
    def header_struct(self) -> struct.Struct:
        """The 3-field header encoding (no padding)."""
        return _HEADER

    @property
    def record_struct(self) -> struct.Struct:
        """The full-record encoding (header plus pad bytes)."""
        return self._record

    @property
    def padding(self) -> bytes:
        return b"\x00" * (self.record_bytes - _HEADER.size)

    # ----------------------------------------------------------- R records

    def pack_r(self, obj: RObject) -> bytes:
        """Encode an R-object; the sptr field is the virtual pointer."""
        return _HEADER.pack(obj.rid, obj.sptr, obj.payload) + self.padding

    def unpack_r(self, data: bytes | memoryview) -> RObject:
        rid, sptr, payload = _HEADER.unpack_from(data)
        return RObject(rid=rid, sptr=sptr, payload=payload)

    # ----------------------------------------------------------- S records

    def pack_s(self, obj: SObject) -> bytes:
        return _HEADER.pack(obj.sid, obj.value, obj.payload) + self.padding

    def unpack_s(self, data: bytes | memoryview) -> SObject:
        sid, value, payload = _HEADER.unpack_from(data)
        return SObject(sid=sid, value=value, payload=payload)

    # ------------------------------------------------------------- batches
    #
    # The batch primitives avoid all per-record overhead of the scalar
    # path: no bytes() copies, no per-record method dispatch, one C-level
    # ``iter_unpack``/``pack_into`` stride over the whole buffer.

    def iter_unpack_r(self, buffer: bytes | memoryview) -> Iterator[RObject]:
        """Decode a contiguous run of R records from a raw buffer."""
        return map(RObject._make, self._record.iter_unpack(buffer))

    def iter_unpack_s(self, buffer: bytes | memoryview) -> Iterator[SObject]:
        """Decode a contiguous run of S records from a raw buffer."""
        return map(SObject._make, self._record.iter_unpack(buffer))

    def unpack_r_batch(self, buffer: bytes | memoryview) -> List[RObject]:
        return list(self.iter_unpack_r(buffer))

    def unpack_s_batch(self, buffer: bytes | memoryview) -> List[SObject]:
        return list(self.iter_unpack_s(buffer))

    def pack_batch(self, objects: Sequence[tuple]) -> bytearray:
        """Encode 3-field records (R or S) into one contiguous buffer."""
        buffer = bytearray(len(objects) * self.record_bytes)
        pack_into = self._record.pack_into
        stride = self.record_bytes
        offset = 0
        for a, b, c in objects:
            pack_into(buffer, offset, a, b, c)
            offset += stride
        return buffer

    # R and S records share the 3×u64 header shape, so one packer serves
    # both; the aliases keep call sites typed.
    pack_r_batch = pack_batch
    pack_s_batch = pack_batch

    # ------------------------------------------------------------- columns
    #
    # The vectorized kernel path: records decoded to three contiguous u64
    # column arrays (header fields only — 24 of the record's bytes; the
    # padding never leaves the mapping) and encoded back from columns via
    # one zero-filled structured array, byte-identical to pack_batch.

    @property
    def np_dtype(self):
        """The numpy structured dtype spanning one full record."""
        if self._np_dtype is None:  # pragma: no cover - numpy-less host
            raise LayoutError("numpy is not available for columnar access")
        return self._np_dtype

    def decode_columns(
        self, buffer: bytes | memoryview
    ) -> Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]:
        """Decode a contiguous run of records into three u64 column copies.

        The columns are compact copies (24/record_bytes of the data), so
        the caller may release the underlying view immediately — nothing
        returned here keeps the mapping's buffer exported.
        """
        arr = _np.frombuffer(buffer, dtype=self.np_dtype)
        # .copy(), not ascontiguousarray: a 0- or 1-element strided field
        # view is already "contiguous", so ascontiguousarray would return
        # the view itself and keep the mapping's buffer exported past the
        # caller's release().
        return (arr["f0"].copy(), arr["f1"].copy(), arr["f2"].copy())

    def pack_columns(self, a, b, c) -> memoryview:
        """Encode three u64 column arrays into contiguous record bytes.

        ``np.zeros`` of the structured dtype zero-fills the padding, so
        the output is byte-identical to :meth:`pack_batch` of the same
        tuples.  Returned as a byte view over the scratch array (the view
        keeps it alive) so the append path writes it without another
        copy.
        """
        out = _np.zeros(len(a), dtype=self.np_dtype)
        out["f0"] = a
        out["f1"] = b
        out["f2"] = c
        return memoryview(out).cast("B")

    def offset_of(self, index: int) -> int:
        """Byte offset of record ``index`` within the data area."""
        if index < 0:
            raise LayoutError(f"record index cannot be negative: {index}")
        return index * self.record_bytes
