"""Fixed-size record layout for the mmap-backed single-level store.

The paper's µDatabase stores data "exactly positioned": objects are written
at fixed offsets and pointers are plain offsets that need no swizzling when
the segment is mapped back in.  Records here are fixed-size (128 bytes in
the paper's experiments): three little-endian u64 header fields followed by
zero padding, so a record never straddles the 4K page boundary used by the
OS pager.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.records import RObject, SObject

_HEADER = struct.Struct("<QQQ")


class LayoutError(ValueError):
    """Raised for invalid record layouts."""


@dataclass(frozen=True)
class RecordLayout:
    """Fixed-size record encoding for R and S objects."""

    record_bytes: int = 128

    def __post_init__(self) -> None:
        if self.record_bytes < _HEADER.size:
            raise LayoutError(
                f"record_bytes must be at least {_HEADER.size} "
                f"(got {self.record_bytes})"
            )

    @property
    def padding(self) -> bytes:
        return b"\x00" * (self.record_bytes - _HEADER.size)

    # ----------------------------------------------------------- R records

    def pack_r(self, obj: RObject) -> bytes:
        """Encode an R-object; the sptr field is the virtual pointer."""
        return _HEADER.pack(obj.rid, obj.sptr, obj.payload) + self.padding

    def unpack_r(self, data: bytes | memoryview) -> RObject:
        rid, sptr, payload = _HEADER.unpack_from(data)
        return RObject(rid=rid, sptr=sptr, payload=payload)

    # ----------------------------------------------------------- S records

    def pack_s(self, obj: SObject) -> bytes:
        return _HEADER.pack(obj.sid, obj.value, obj.payload) + self.padding

    def unpack_s(self, data: bytes | memoryview) -> SObject:
        sid, value, payload = _HEADER.unpack_from(data)
        return SObject(sid=sid, value=value, payload=payload)

    def offset_of(self, index: int) -> int:
        """Byte offset of record ``index`` within the data area."""
        if index < 0:
            raise LayoutError(f"record index cannot be negative: {index}")
        return index * self.record_bytes
