"""File-backed memory-mapped segments (the real-``mmap`` single-level store).

This is the µDatabase idea on Python's :mod:`mmap`: a segment is one file,
mapped into the address space, holding a header page plus a fixed-size
record area.  Reads and writes are plain slice operations on the mapping —
no explicit ``read``/``write`` calls — so the OS pager performs all I/O,
exactly the environment the paper studies.

The three mapping operations mirror the paper's cost model:

* :meth:`MappedSegment.create` — ``newMap``: acquire disk space (ftruncate)
  and build the mapping;
* :meth:`MappedSegment.open`   — ``openMap``: map existing data;
* :meth:`MappedSegment.delete` — ``deleteMap``: unmap and destroy the data.

All three are also exposed as timed helpers so the real backend can measure
its own Figure 1(b).
"""

from __future__ import annotations

import mmap
import os
import struct
import time
from pathlib import Path
from typing import Iterator, Tuple

from repro.storage.layout import RecordLayout

MAGIC = b"UDBSEG1\x00"
HEADER = struct.Struct("<8sQQQ")  # magic, record_bytes, capacity, count
PAGE_SIZE = mmap.PAGESIZE


class StorageError(RuntimeError):
    """Raised for storage layer failures."""


class MappedSegment:
    """One memory-mapped segment file of fixed-size records."""

    def __init__(
        self, path: Path, file_obj, mapping: mmap.mmap, layout: RecordLayout,
        capacity: int, count: int,
    ) -> None:
        self.path = path
        self._file = file_obj
        self._map = mapping
        self.layout = layout
        self.capacity = capacity
        self._count = count
        self._closed = False

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128
    ) -> "MappedSegment":
        """newMap: create the file, size it, and map it in."""
        if capacity < 0:
            raise StorageError("capacity cannot be negative")
        layout = RecordLayout(record_bytes)
        path = Path(path)
        if path.exists():
            raise StorageError(f"segment file already exists: {path}")
        data_bytes = max(1, capacity) * record_bytes
        total = PAGE_SIZE + _round_up(data_bytes, PAGE_SIZE)
        file_obj = open(path, "w+b")
        try:
            file_obj.truncate(total)
            mapping = mmap.mmap(file_obj.fileno(), total)
        except Exception:
            file_obj.close()
            path.unlink(missing_ok=True)
            raise
        mapping[: HEADER.size] = HEADER.pack(MAGIC, record_bytes, capacity, 0)
        return cls(path, file_obj, mapping, layout, capacity, 0)

    @classmethod
    def open(cls, path: str | os.PathLike) -> "MappedSegment":
        """openMap: map an existing segment file."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no segment file at {path}")
        file_obj = open(path, "r+b")
        try:
            mapping = mmap.mmap(file_obj.fileno(), 0)
        except Exception:
            file_obj.close()
            raise
        magic, record_bytes, capacity, count = HEADER.unpack_from(mapping)
        if magic != MAGIC:
            mapping.close()
            file_obj.close()
            raise StorageError(f"{path} is not a segment file")
        return cls(path, file_obj, mapping, RecordLayout(record_bytes), capacity, count)

    @staticmethod
    def delete(path: str | os.PathLike) -> None:
        """deleteMap: destroy a segment and its data."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no segment file at {path}")
        path.unlink()

    def flush(self) -> None:
        self._check_open()
        self._write_count()
        self._map.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._write_count()
        self._map.flush()
        self._map.close()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "MappedSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._count

    def read_record(self, index: int) -> bytes:
        """Slice one record out of the mapping (an implicit page fault)."""
        self._check_open()
        if not 0 <= index < self._count:
            raise StorageError(
                f"record {index} outside [0, {self._count}) in {self.path.name}"
            )
        start = PAGE_SIZE + self.layout.offset_of(index)
        return bytes(self._map[start : start + self.layout.record_bytes])

    def write_record(self, index: int, data: bytes) -> None:
        """Write one record in place."""
        self._check_open()
        if not 0 <= index < self.capacity:
            raise StorageError(
                f"record {index} outside capacity {self.capacity} in {self.path.name}"
            )
        if len(data) != self.layout.record_bytes:
            raise StorageError(
                f"record must be exactly {self.layout.record_bytes} bytes "
                f"(got {len(data)})"
            )
        start = PAGE_SIZE + self.layout.offset_of(index)
        self._map[start : start + self.layout.record_bytes] = data
        if index >= self._count:
            self._count = index + 1

    def append_record(self, data: bytes) -> int:
        """Append one record; returns its index."""
        if self._count >= self.capacity:
            raise StorageError(f"segment {self.path.name} is full")
        index = self._count
        self.write_record(index, data)
        return index

    def iter_records(self) -> Iterator[bytes]:
        for index in range(self._count):
            yield self.read_record(index)

    # ------------------------------------------------------------ internal

    def _write_count(self) -> None:
        if not self._map.closed:
            self._map[: HEADER.size] = HEADER.pack(
                MAGIC, self.layout.record_bytes, self.capacity, self._count
            )

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"segment {self.path.name} is closed")


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


# ------------------------------------------------------- timed map helpers

def timed_new_map(
    path: str | os.PathLike, capacity: int, record_bytes: int = 128
) -> Tuple[MappedSegment, float]:
    """newMap plus its wall-clock cost in milliseconds (real Figure 1b)."""
    start = time.perf_counter()
    segment = MappedSegment.create(path, capacity, record_bytes)
    return segment, (time.perf_counter() - start) * 1000.0


def timed_open_map(path: str | os.PathLike) -> Tuple[MappedSegment, float]:
    """openMap plus its wall-clock cost in milliseconds."""
    start = time.perf_counter()
    segment = MappedSegment.open(path)
    return segment, (time.perf_counter() - start) * 1000.0


def timed_delete_map(path: str | os.PathLike) -> float:
    """deleteMap plus its wall-clock cost in milliseconds."""
    start = time.perf_counter()
    MappedSegment.delete(path)
    return (time.perf_counter() - start) * 1000.0
