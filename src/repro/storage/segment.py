"""File-backed memory-mapped segments (the real-``mmap`` single-level store).

This is the µDatabase idea on Python's :mod:`mmap`: a segment is one file,
mapped into the address space, holding a header page plus a fixed-size
record area.  Reads and writes are plain slice operations on the mapping —
no explicit ``read``/``write`` calls — so the OS pager performs all I/O,
exactly the environment the paper studies.

The three mapping operations mirror the paper's cost model:

* :meth:`MappedSegment.create` — ``newMap``: acquire disk space (ftruncate)
  and build the mapping;
* :meth:`MappedSegment.open`   — ``openMap``: map existing data;
* :meth:`MappedSegment.delete` — ``deleteMap``: unmap and destroy the data.

All three are also exposed as timed helpers so the real backend can measure
its own Figure 1(b).

Every mapping operation and every batched read/write additionally records
into the active :mod:`repro.obs` registry (labelled by segment *kind* — the
leading alphabetic run of the file name, so ``RP0_1.seg`` counts under
``RP``).  When no registry is active the calls hit the shared no-op
``NullRegistry``; counting happens at batch granularity, so even enabled
runs pay nanoseconds per record.

Segment creation is *atomic with respect to process crashes*: ``create``
writes to a ``<name>.seg.tmp`` sibling and ``close`` renames it into
place, so a reader can only ever open a fully written segment — a writer
that dies mid-pass leaves an orphan ``.tmp`` file that
:meth:`~repro.storage.store.Store.cleanup_orphans` sweeps, never a
half-written ``.seg``.  ``discard`` closes *without* publishing (the
failure path), and ``open`` rejects torn files outright (bad magic, a
header count beyond capacity, or a file shorter than its header claims).
The rename protocol alone covers process-crash recovery, which is the
real backend's fault model; pass ``durable=True`` to additionally
msync+fsync before the rename when power-failure durability is needed —
it is off by default because closing hundreds of temporary spill files
per join must not pay a synchronous writeback each.
"""

from __future__ import annotations

import mmap
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, Optional, Tuple

try:  # pragma: no cover - POSIX-only; the flock guard degrades gracefully
    import fcntl as _fcntl
except ImportError:  # pragma: no cover
    _fcntl = None

from repro import config

from repro.governor.budget import disk_preflight
from repro.governor.errors import classify_os_error
from repro.governor.watchdog import active_meter as _meter
from repro.obs.registry import active as _metrics
from repro.storage.layout import RecordLayout

MAGIC = b"UDBSEG1\x00"
HEADER = struct.Struct("<8sQQQ")  # magic, record_bytes, capacity, count
PAGE_SIZE = mmap.PAGESIZE
_META_LEN = struct.Struct("<Q")

# Integrity footer: a per-payload CRC32C-style checksum (zlib's C-speed
# CRC-32; the tag records which algorithm produced it so a future build
# with a true CRC32C extension stays self-describing) written into the
# *end* of the header page at close() and verified on open().  The torn-
# header rejection of `_header_problem` catches writers that died mid-
# publish; the footer extends that to silent payload corruption — a
# flipped bit in a cold segment, a partial page lost by a dying disk.
INTEGRITY_MAGIC = b"UDBCRC1\x00"
_FOOTER = struct.Struct("<8s4sQQ")  # magic, algo tag, crc, count at crc
FOOTER_OFFSET = PAGE_SIZE - _FOOTER.size
_CRC_ALGO = b"crc2"  # zlib.crc32 (IEEE polynomial)
_CRC_CHUNK = 1 << 20

META_CAPACITY = PAGE_SIZE - HEADER.size - _META_LEN.size - _FOOTER.size

#: Process-wide integrity switches.  ``None`` defers to the environment
#: (``REPRO_INTEGRITY=off`` disables both — the bench harness's baseline
#: knob, env-based so forked pool workers inherit it); anything else is
#: an explicit in-process override via :func:`configure_integrity`.
_INTEGRITY: dict = {"write": None, "verify": None}

#: Payload-verification memo: (dev, ino, mtime_ns, size) -> verified crc.
#: A pool worker re-opens the same R/S/spill segments task after task;
#: re-hashing an unchanged file every time would turn the <5%% verify
#: overhead into a full extra read per task.  Any write updates mtime/
#: size, so a stale entry can never satisfy a changed file.
_VERIFIED_CACHE: dict = {}
_VERIFIED_CACHE_MAX = 8192


def configure_integrity(
    write: Optional[bool] = None, verify: Optional[bool] = None
) -> None:
    """Override checksum writing/verification process-wide.

    Pass ``None`` to leave a switch on its environment-driven default.
    The bench harness uses this (plus ``REPRO_INTEGRITY=off`` for forked
    workers) to measure the checksum layer's overhead against a baseline.
    """
    _INTEGRITY["write"] = write
    _INTEGRITY["verify"] = verify


def _integrity_on(switch: str) -> bool:
    override = _INTEGRITY[switch]
    if override is not None:
        return override
    return config.env_enabled("integrity")


def _payload_crc(fd: int, count: int, record_bytes: int) -> int:
    """CRC over the written payload bytes, chunked pread (no mapping)."""
    crc = 0
    offset = PAGE_SIZE
    remaining = count * record_bytes
    while remaining:
        chunk = os.pread(fd, min(_CRC_CHUNK, remaining), offset)
        if not chunk:  # short file — the count check reports it precisely
            break
        crc = zlib.crc32(chunk, crc)
        offset += len(chunk)
        remaining -= len(chunk)
    return crc


def _parse_footer(buffer, offset: int = FOOTER_OFFSET) -> Optional[Tuple[int, int]]:
    """The stored (crc, count), or None for pre-checksum segments."""
    if len(buffer) < offset + _FOOTER.size:
        return None
    magic, _algo, crc, count = _FOOTER.unpack_from(buffer, offset)
    if magic != INTEGRITY_MAGIC:
        return None
    return crc, count


def _verify_payload(
    path: Path, fd: int, count: int, record_bytes: int, stored_crc: int,
    kind: str,
) -> None:
    """Prove the payload matches its stored checksum (memoized per file)."""
    st = os.fstat(fd)
    key = (st.st_dev, st.st_ino, st.st_mtime_ns, st.st_size)
    if _VERIFIED_CACHE.get(key) == stored_crc:
        _metrics().count("storage.integrity.cached", 1, kind=kind)
        return
    crc = _payload_crc(fd, count, record_bytes)
    if crc != stored_crc:
        raise StorageError(
            f"{path} payload checksum mismatch (stored 0x{stored_crc:08x}, "
            f"computed 0x{crc:08x} over {count} records)"
        )
    if len(_VERIFIED_CACHE) >= _VERIFIED_CACHE_MAX:
        _VERIFIED_CACHE.clear()
    _VERIFIED_CACHE[key] = stored_crc
    _metrics().count("storage.integrity.verify", 1, kind=kind)


def segment_footer(path: str | os.PathLike) -> Optional[Tuple[int, int]]:
    """A published segment's stored (payload crc, record count).

    ``None`` for pre-checksum segments (or ones closed with integrity
    writing off).  Cheap — one small pread, no mapping, no payload scan.
    """
    try:
        with open(path, "rb") as file_obj:
            file_obj.seek(FOOTER_OFFSET)
            return _parse_footer(file_obj.read(_FOOTER.size), 0)
    except FileNotFoundError:
        raise StorageError(f"no segment file at {path}") from None


def scrub_segment(path: str | os.PathLike) -> str:
    """Fully verify one segment file: header sanity plus payload checksum.

    Unlike the open-time check this never consults the verified-file
    memo — a scrub exists to catch corruption that happened *since* the
    segment was last trusted.  Returns ``"verified"``, or ``"legacy"``
    for a structurally-sound pre-checksum segment; raises
    :class:`StorageError` with the precise problem otherwise.
    """
    path = Path(path)
    kind = segment_kind(path.name)
    try:
        with open(path, "rb") as file_obj:
            header = file_obj.read(HEADER.size)
            if len(header) < HEADER.size:
                raise StorageError(f"{path} is not a segment file")
            magic, record_bytes, capacity, count = HEADER.unpack_from(header)
            problem = _header_problem(
                magic, record_bytes, capacity, count, os.fstat(file_obj.fileno()).st_size
            )
            if problem is not None:
                raise StorageError(f"{path} {problem}")
            file_obj.seek(FOOTER_OFFSET)
            stored = _parse_footer(file_obj.read(_FOOTER.size), 0)
            if stored is None:
                _metrics().count("storage.integrity.scrub", 1, kind=kind)
                return "legacy"
            stored_crc, stored_count = stored
            if stored_count != count:
                raise StorageError(
                    f"{path} is corrupt: integrity footer covers "
                    f"{stored_count} records but the header claims {count}"
                )
            fd = file_obj.fileno()
            crc = _payload_crc(fd, count, record_bytes)
            if crc != stored_crc:
                raise StorageError(
                    f"{path} payload checksum mismatch (stored "
                    f"0x{stored_crc:08x}, computed 0x{crc:08x} over "
                    f"{count} records)"
                )
            # A scrubbed file is a freshly-proven file: prime the memo so
            # the next open() of the unchanged bytes is free.
            st = os.fstat(fd)
            if len(_VERIFIED_CACHE) >= _VERIFIED_CACHE_MAX:
                _VERIFIED_CACHE.clear()
            _VERIFIED_CACHE[
                (st.st_dev, st.st_ino, st.st_mtime_ns, st.st_size)
            ] = stored_crc
    except FileNotFoundError:
        raise StorageError(f"no segment file at {path}") from None
    _metrics().count("storage.integrity.scrub", 1, kind=kind)
    return "verified"


class StorageError(RuntimeError):
    """Raised for storage layer failures."""


def _pwrite_all(fd: int, data, offset: int) -> None:
    """Write a whole buffer at ``offset``, resuming on short writes.

    Bulk segment writes go through ``pwrite`` rather than the mapping:
    the page-cache write path needs no write faults, so a freshly created
    sparse segment skips the expensive first-fault/block-allocation stall
    that a store write through the mapping would take (measured ~1.4 ms
    per segment at paper scale).  ``read``s still go through the mapping
    — the unified page cache keeps both views coherent.
    """
    view = memoryview(data).cast("B")
    while len(view):
        written = os.pwrite(fd, view, offset)
        view = view[written:]
        offset += written


def tmp_segment_path(path: str | os.PathLike) -> Path:
    """The sibling a segment is written to before its atomic publish."""
    path = Path(path)
    return path.with_name(path.name + ".tmp")


def segment_kind(name: str) -> str:
    """A file's metric label: the leading alphabetic run of its stem.

    ``R0.seg`` → ``R``, ``RP0_1.seg`` → ``RP``, ``PAIRS_p0_0.seg`` →
    ``PAIRS`` — the stats document's per-segment section aggregates on
    these kinds, mirroring the paper's per-area disk layout
    ``[ Ri | Si | RSi | RPi | ... ]``.
    """
    stem = name.split(".", 1)[0]
    for i, char in enumerate(stem):
        if not char.isalpha():
            return stem[:i] or stem
    return stem


class MappedSegment:
    """One memory-mapped segment file of fixed-size records."""

    def __init__(
        self, path: Path, file_obj, mapping: Optional[mmap.mmap],
        layout: RecordLayout, capacity: int, count: int,
        backing_path: Optional[Path] = None, durable: bool = False,
    ) -> None:
        self.path = path
        self._file = file_obj
        # ``None`` until the first read: freshly *created* segments defer
        # their mapping, because writes go through pwrite and a created-
        # written-closed lifecycle (every spill, run, and PAIRS file)
        # never needs one.  Opened segments map eagerly as before.
        self._map = mapping
        self.layout = layout
        self.capacity = capacity
        self._count = count
        self._closed = False
        self.kind = segment_kind(path.name)
        # Where the bytes actually live right now; differs from `path`
        # until a created segment is published by close().
        self._backing = backing_path if backing_path is not None else path
        self._pending = self._backing != self.path
        self._durable = durable
        # Whether the payload (or its written extent) changed since the
        # stored checksum was valid; created segments are born dirty so
        # close() always stamps a fresh footer.
        self._dirty = self._pending
        # Streaming checksum over strictly-sequential appends.  While
        # every write lands at the next free slot the payload CRC is
        # already known when the footer is stamped — no second read of
        # bytes this process just wrote.  ``None`` means the stream no
        # longer covers the payload (in-place rewrite, reserve(), or a
        # segment opened with pre-existing records) and the footer falls
        # back to the full pread scan.
        self._stream_crc: Optional[int] = 0 if count == 0 else None
        self._stream_count = 0
        # Header count as last persisted; lets a read-only open close
        # without touching the file (a gratuitous header pwrite would
        # bump mtime and evict the file's verified-payload memo entry).
        self._disk_count = count if not self._pending else -1
        self._mapped_bytes = len(mapping) if mapping is not None else 0
        if self._mapped_bytes:
            _meter().map_bytes(self._mapped_bytes)

    def _mapping(self) -> mmap.mmap:
        """The mapping, materialized on first read for created segments."""
        if self._map is None:
            total = PAGE_SIZE + _round_up(
                max(1, self.capacity) * self.layout.record_bytes, PAGE_SIZE
            )
            self._map = mmap.mmap(self._file.fileno(), total)
            self._mapped_bytes = total
            _meter().map_bytes(total)
        return self._map

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128,
        overwrite: bool = False, durable: bool = False,
    ) -> "MappedSegment":
        """newMap: create the file, size it, and map it in.

        The segment is written to a ``.tmp`` sibling and atomically
        renamed over ``path`` on :meth:`close` — until then, ``path``
        does not exist (or, with ``overwrite=True``, still holds its old
        contents).  ``overwrite=True`` is the retry-idempotence knob: a
        re-executed worker pass may legitimately replace the outputs a
        failed attempt published.
        """
        started = time.perf_counter()
        if capacity < 0:
            raise StorageError("capacity cannot be negative")
        layout = RecordLayout(record_bytes)
        path = Path(path)
        if path.exists() and not overwrite:
            raise StorageError(f"segment file already exists: {path}")
        tmp = tmp_segment_path(path)
        tmp.unlink(missing_ok=True)  # a stale orphan from a dead writer
        data_bytes = max(1, capacity) * record_bytes
        total = PAGE_SIZE + _round_up(data_bytes, PAGE_SIZE)
        # Refuse (with a classified error) a creation that would cross an
        # armed disk budget, *before* acquiring any space.
        disk_preflight(path, total)
        file_obj = open(tmp, "w+b")
        if _fcntl is not None:
            # Mark the tmp as live-writer-owned: cleanup_orphans probes
            # this lock and skips tmps whose writer still holds it.  The
            # lock dies with the fd (close/discard/process death), so a
            # crashed writer's orphan is sweepable immediately.
            try:
                _fcntl.flock(
                    file_obj.fileno(), _fcntl.LOCK_EX | _fcntl.LOCK_NB
                )
            except OSError:  # pragma: no cover - lock table exhaustion
                pass
        try:
            file_obj.truncate(total)
            _pwrite_all(
                file_obj.fileno(),
                HEADER.pack(MAGIC, record_bytes, capacity, 0),
                0,
            )
        except Exception as error:
            file_obj.close()
            tmp.unlink(missing_ok=True)
            # A full disk (ENOSPC out of ftruncate or the header write)
            # surfaces as a classified resource error, not a raw OSError.
            classified = classify_os_error(
                error, f"creating segment {path.name}"
            )
            if classified is not None:
                raise classified from error
            raise
        # No eager mmap: the mapping materializes on first read (most
        # created segments are write-only until re-opened by a reader).
        segment = cls(
            path, file_obj, None, layout, capacity, 0,
            backing_path=tmp, durable=durable,
        )
        metrics = _metrics()
        if metrics.enabled:
            metrics.count("storage.map.new", 1, kind=segment.kind)
            metrics.observe(
                "storage.map_ms",
                (time.perf_counter() - started) * 1000.0,
                op="new", kind=segment.kind,
            )
        return segment

    @classmethod
    def open(cls, path: str | os.PathLike) -> "MappedSegment":
        """openMap: map an existing segment file."""
        started = time.perf_counter()
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no segment file at {path}")
        file_obj = open(path, "r+b")
        try:
            mapping = mmap.mmap(file_obj.fileno(), 0)
        except Exception:
            file_obj.close()
            raise
        if len(mapping) < HEADER.size:
            mapping.close()
            file_obj.close()
            raise StorageError(f"{path} is not a segment file")
        magic, record_bytes, capacity, count = HEADER.unpack_from(mapping)
        problem = _header_problem(
            magic, record_bytes, capacity, count, len(mapping)
        )
        if problem is None:
            try:
                layout = RecordLayout(record_bytes)
            except Exception:
                problem = f"declares an unusable record size {record_bytes}"
        if problem is None:
            stored = _parse_footer(mapping)
            if stored is not None:
                stored_crc, stored_count = stored
                if stored_count != count:
                    problem = (
                        f"is corrupt: integrity footer covers {stored_count} "
                        f"records but the header claims {count}"
                    )
                elif _integrity_on("verify"):
                    try:
                        _verify_payload(
                            path, file_obj.fileno(), count, record_bytes,
                            stored_crc, segment_kind(path.name),
                        )
                    except StorageError:
                        mapping.close()
                        file_obj.close()
                        raise
        if problem is not None:
            mapping.close()
            file_obj.close()
            raise StorageError(f"{path} {problem}")
        segment = cls(path, file_obj, mapping, layout, capacity, count)
        metrics = _metrics()
        if metrics.enabled:
            metrics.count("storage.map.open", 1, kind=segment.kind)
            metrics.observe(
                "storage.map_ms",
                (time.perf_counter() - started) * 1000.0,
                op="open", kind=segment.kind,
            )
        return segment

    @staticmethod
    def record_count(path: str | os.PathLike) -> int:
        """Read a segment's record count from its header without mapping it.

        Sizing a pass's output (e.g. a PAIRS segment) needs only the counts
        of its input files; a plain 32-byte read is far cheaper than
        building and tearing down a whole mapping per file.
        """
        path = Path(path)
        try:
            with open(path, "rb") as file_obj:
                header = file_obj.read(HEADER.size)
                file_obj.seek(FOOTER_OFFSET)
                footer = file_obj.read(_FOOTER.size)
        except FileNotFoundError:
            raise StorageError(f"no segment file at {path}") from None
        if len(header) < HEADER.size:
            raise StorageError(f"{path} is not a segment file")
        magic, record_bytes, capacity, count = HEADER.unpack_from(header)
        problem = _header_problem(
            magic, record_bytes, capacity, count, os.path.getsize(path)
        )
        if problem is not None:
            raise StorageError(f"{path} {problem}")
        stored = _parse_footer(footer, 0)
        if stored is not None and stored[1] != count:
            raise StorageError(
                f"{path} is corrupt: integrity footer covers {stored[1]} "
                f"records but the header claims {count}"
            )
        return count

    @staticmethod
    def delete(path: str | os.PathLike) -> None:
        """deleteMap: destroy a segment and its data."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no segment file at {path}")
        path.unlink()
        _metrics().count("storage.map.delete", 1, kind=segment_kind(path.name))

    def flush(self) -> None:
        self._check_open()
        self._write_count()
        if self._dirty and _integrity_on("write"):
            self._write_footer()
        if self._map is not None:
            self._map.flush()
        _metrics().count("storage.flush", 1, kind=self.kind)

    def close(self) -> None:
        """Unmap the segment and, if it was freshly created, publish it:
        the ``.tmp`` backing file is atomically renamed to the final path,
        so readers only ever see complete segments.

        No ``msync`` here by default: dirty mapped pages survive
        ``munmap`` in the unified page cache, so readers that re-open the
        file see every write, and a *process* crash after the rename
        cannot tear the data.  Segments created with ``durable=True``
        additionally msync+fsync before the rename for power-failure
        safety — closing hundreds of temporary spill files per join must
        not pay a synchronous writeback each, so that is opt-in.
        """
        if self._closed:
            return
        self._write_count()
        stamped = None
        if self._dirty and _integrity_on("write"):
            stamped = self._write_footer()
        if self._pending and self._durable:
            if self._map is not None:
                self._map.flush()
            os.fsync(self._file.fileno())
        if self._map is not None:
            self._map.close()
        if stamped is not None:
            # The bytes behind this fd were hashed as they were written;
            # prime the verified-file memo so a same-process re-open is
            # free.  os.replace below preserves dev/ino/mtime/size, so
            # the key survives the publish; if the kernel later bumps
            # mtime for writeback of mapped pages the entry simply never
            # hits again and the reader re-verifies — the memo can relax
            # a check, never skip a needed one for changed bytes.
            st = os.fstat(self._file.fileno())
            if len(_VERIFIED_CACHE) >= _VERIFIED_CACHE_MAX:
                _VERIFIED_CACHE.clear()
            _VERIFIED_CACHE[
                (st.st_dev, st.st_ino, st.st_mtime_ns, st.st_size)
            ] = stamped
        self._file.close()
        self._closed = True
        if self._mapped_bytes:
            _meter().unmap_bytes(self._mapped_bytes)
        if self._pending:
            os.replace(self._backing, self.path)
            self._pending = False

    def discard(self) -> None:
        """Close *without* publishing (idempotent, the failure path).

        A created-but-unpublished segment's ``.tmp`` backing file is
        removed; an opened segment is simply unmapped with its header
        count left as it was on disk, so partial appends from a failed
        pass are never made visible.
        """
        if self._closed:
            return
        if self._map is not None:
            self._map.close()
        self._file.close()
        self._closed = True
        if self._mapped_bytes:
            _meter().unmap_bytes(self._mapped_bytes)
        if self._pending:
            self._backing.unlink(missing_ok=True)
            self._pending = False

    def __enter__(self) -> "MappedSegment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._pending:
            self.discard()
        else:
            self.close()

    # ------------------------------------------------------------ metadata
    #
    # The header page has ~4K of slack after the fixed header; segments
    # expose it as a small application blob (e.g. the grace spill files
    # store their per-bucket directory there, so one file can carry many
    # bucket-grouped runs without a sidecar).

    def write_meta(self, data: bytes) -> None:
        """Store an application blob in the header page's spare space."""
        self._check_open()
        if len(data) > META_CAPACITY:
            raise StorageError(
                f"meta blob of {len(data)} bytes exceeds the header page's "
                f"{META_CAPACITY} spare bytes"
            )
        start = HEADER.size
        _pwrite_all(
            self._file.fileno(), _META_LEN.pack(len(data)) + data, start
        )

    def read_meta(self) -> bytes:
        """Fetch the application blob (empty if never written)."""
        self._check_open()
        start = HEADER.size
        mapping = self._mapping()
        (length,) = _META_LEN.unpack_from(mapping, start)
        if length > META_CAPACITY:
            raise StorageError(f"corrupt meta length {length} in {self.path.name}")
        return bytes(
            mapping[start + _META_LEN.size : start + _META_LEN.size + length]
        )

    # -------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._count

    def read_record(self, index: int) -> bytes:
        """Slice one record out of the mapping (an implicit page fault)."""
        self._check_open()
        if not 0 <= index < self._count:
            raise StorageError(
                f"record {index} outside [0, {self._count}) in {self.path.name}"
            )
        start = PAGE_SIZE + self.layout.offset_of(index)
        return bytes(
            self._mapping()[start : start + self.layout.record_bytes]
        )

    def write_record(self, index: int, data: bytes) -> None:
        """Write one record in place.

        ``index`` must fall inside the written prefix or name the next free
        slot (``index == len(self)``): a jump past the count would leave
        uninitialized garbage records that :meth:`iter_records` would then
        happily yield.
        """
        self._check_open()
        if not 0 <= index < self.capacity:
            raise StorageError(
                f"record {index} outside capacity {self.capacity} in {self.path.name}"
            )
        if index > self._count:
            raise StorageError(
                f"sparse write at {index} would leave a gap of "
                f"{index - self._count} garbage records in {self.path.name} "
                f"(count is {self._count})"
            )
        if len(data) != self.layout.record_bytes:
            raise StorageError(
                f"record must be exactly {self.layout.record_bytes} bytes "
                f"(got {len(data)})"
            )
        start = PAGE_SIZE + self.layout.offset_of(index)
        self._mapping()[start : start + self.layout.record_bytes] = data
        self._dirty = True
        if self._stream_crc is not None:
            if index == self._stream_count:
                self._stream_crc = zlib.crc32(data, self._stream_crc)
                self._stream_count += 1
            else:
                self._stream_crc = None
        if index >= self._count:
            self._count = index + 1

    def reserve(self, count: int) -> None:
        """Extend the record count to ``count``, declaring the zero-filled
        records in between valid.

        Fixed-slot structures (the B-tree's node table) address records out
        of append order; they reserve their slots explicitly instead of
        relying on sparse writes, which are rejected because the garbage
        gap they leave would be yielded by :meth:`iter_records`.
        """
        self._check_open()
        if count > self.capacity:
            raise StorageError(
                f"cannot reserve {count} records in {self.path.name} "
                f"(capacity {self.capacity})"
            )
        if count > self._count:
            self._count = count
            self._dirty = True
            # The reserved slots were never streamed through the CRC.
            self._stream_crc = None

    def append_record(self, data: bytes) -> int:
        """Append one record; returns its index."""
        if self._count >= self.capacity:
            raise StorageError(f"segment {self.path.name} is full")
        index = self._count
        self.write_record(index, data)
        return index

    def iter_records(self) -> Iterator[bytes]:
        for index in range(self._count):
            yield self.read_record(index)

    # ------------------------------------------------------------- batches
    #
    # Block-at-a-time access: a batch is a memoryview straight into the
    # mapping — zero copies — which the layout's iter_unpack/pack_into
    # primitives then stride over.  Callers must release (or drop) the
    # views before closing the segment, since a mapping with exported
    # buffers cannot be unmapped.

    def read_batch(self, start: int, count: int) -> memoryview:
        """A zero-copy view of ``count`` records beginning at ``start``."""
        self._check_open()
        if count < 0:
            raise StorageError(f"batch count cannot be negative: {count}")
        if not 0 <= start <= self._count or start + count > self._count:
            raise StorageError(
                f"batch [{start}, {start + count}) outside [0, {self._count}) "
                f"in {self.path.name}"
            )
        record_bytes = self.layout.record_bytes
        lo = PAGE_SIZE + start * record_bytes
        return memoryview(self._mapping())[lo : lo + count * record_bytes]

    def iter_batches(
        self,
        batch_records: int = 4096,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[memoryview]:
        """Views covering records ``[start, stop)``, ``batch_records`` at a time.

        Defaults cover every written record; a narrower window is the
        executor rebalancer's record-range shard shape.
        """
        if batch_records <= 0:
            raise StorageError(f"batch size must be positive: {batch_records}")
        stop = self._count if stop is None else min(stop, self._count)
        start = max(0, start)
        for start in range(start, stop, batch_records):
            count = min(batch_records, stop - start)
            metrics = _metrics()
            if metrics.enabled:
                metrics.count("storage.read.batches", 1, kind=self.kind)
                metrics.count("storage.read.records", count, kind=self.kind)
                metrics.count(
                    "storage.read.bytes",
                    count * self.layout.record_bytes,
                    kind=self.kind,
                )
            yield self.read_batch(start, count)

    def append_batch(self, data: bytes | bytearray | memoryview) -> int:
        """Append a contiguous run of packed records in one slice write.

        Returns the index of the first appended record.
        """
        self._check_open()
        record_bytes = self.layout.record_bytes
        # Normalize to a flat byte view: callers hand over bytes, packed
        # scratch arrays, or (n, k) u64 blocks alike.
        data = memoryview(data).cast("B")
        nbytes = len(data)
        if nbytes % record_bytes:
            raise StorageError(
                f"batch of {nbytes} bytes is not a whole number of "
                f"{record_bytes}-byte records"
            )
        count = nbytes // record_bytes
        if self._count + count > self.capacity:
            raise StorageError(
                f"appending {count} records overflows {self.path.name} "
                f"({self._count} of {self.capacity} used)"
            )
        start = self._count
        if count:
            lo = PAGE_SIZE + start * record_bytes
            _pwrite_all(self._file.fileno(), data, lo)
            self._count = start + count
            self._dirty = True
            if self._stream_crc is not None:
                if start == self._stream_count:
                    self._stream_crc = zlib.crc32(data, self._stream_crc)
                    self._stream_count = self._count
                else:
                    self._stream_crc = None
            metrics = _metrics()
            if metrics.enabled:
                metrics.count("storage.write.batches", 1, kind=self.kind)
                metrics.count("storage.write.records", count, kind=self.kind)
                metrics.count("storage.write.bytes", nbytes, kind=self.kind)
        return start

    # ------------------------------------------------------------ internal

    def _write_count(self) -> None:
        if not self._file.closed and self._count != self._disk_count:
            _pwrite_all(
                self._file.fileno(),
                HEADER.pack(
                    MAGIC, self.layout.record_bytes, self.capacity,
                    self._count,
                ),
                0,
            )
            self._disk_count = self._count

    def _write_footer(self) -> int:
        """Stamp the integrity footer over the current payload.

        Sequentially-appended segments (every spill, run, and PAIRS file)
        already hold the payload CRC in the append stream — stamping is
        then one pwrite, not a full re-read of bytes this process just
        wrote.  Anything else pays the scan once, which re-seeds the
        stream so later appends extend it incrementally.
        """
        fd = self._file.fileno()
        if self._stream_crc is not None and self._stream_count == self._count:
            crc = self._stream_crc
        else:
            crc = _payload_crc(fd, self._count, self.layout.record_bytes)
            self._stream_crc = crc
            self._stream_count = self._count
        _pwrite_all(
            fd,
            _FOOTER.pack(INTEGRITY_MAGIC, _CRC_ALGO, crc, self._count),
            FOOTER_OFFSET,
        )
        self._dirty = False
        return crc

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"segment {self.path.name} is closed")


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def _header_problem(
    magic: bytes, record_bytes: int, capacity: int, count: int,
    file_bytes: int,
) -> Optional[str]:
    """Why a segment header cannot be trusted, or None if it can.

    A writer that died mid-pass can leave a file whose header disagrees
    with its data area; accepting it would surface garbage records, so
    open/record_count reject torn segments outright and the caller
    re-creates them (worker passes are idempotent).
    """
    if magic != MAGIC:
        return "is not a segment file"
    if record_bytes <= 0:
        return f"declares an unusable record size {record_bytes}"
    if count > capacity:
        return (
            f"is torn: header claims {count} records but capacity is "
            f"{capacity}"
        )
    if file_bytes < PAGE_SIZE + capacity * record_bytes:
        return (
            f"is torn: {file_bytes} bytes on disk cannot hold the "
            f"declared {capacity}-record data area"
        )
    return None


# ------------------------------------------------------- timed map helpers

def timed_new_map(
    path: str | os.PathLike, capacity: int, record_bytes: int = 128
) -> Tuple[MappedSegment, float]:
    """newMap plus its wall-clock cost in milliseconds (real Figure 1b)."""
    start = time.perf_counter()
    segment = MappedSegment.create(path, capacity, record_bytes)
    return segment, (time.perf_counter() - start) * 1000.0


def timed_open_map(path: str | os.PathLike) -> Tuple[MappedSegment, float]:
    """openMap plus its wall-clock cost in milliseconds."""
    start = time.perf_counter()
    segment = MappedSegment.open(path)
    return segment, (time.perf_counter() - start) * 1000.0


def timed_delete_map(path: str | os.PathLike) -> float:
    """deleteMap plus its wall-clock cost in milliseconds."""
    start = time.perf_counter()
    MappedSegment.delete(path)
    return (time.perf_counter() - start) * 1000.0
