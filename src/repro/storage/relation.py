"""Typed relations over mapped segments."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List

from repro.core.records import RObject, SObject
from repro.storage.segment import MappedSegment


class RRelationFile:
    """An R partition stored in one mapped segment."""

    def __init__(self, segment: MappedSegment) -> None:
        self.segment = segment

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128
    ) -> "RRelationFile":
        return cls(MappedSegment.create(path, capacity, record_bytes))

    @classmethod
    def open(cls, path: str | os.PathLike) -> "RRelationFile":
        return cls(MappedSegment.open(path))

    def append(self, obj: RObject) -> int:
        return self.segment.append_record(self.segment.layout.pack_r(obj))

    def get(self, index: int) -> RObject:
        return self.segment.layout.unpack_r(self.segment.read_record(index))

    def __len__(self) -> int:
        return len(self.segment)

    def __iter__(self) -> Iterator[RObject]:
        unpack = self.segment.layout.unpack_r
        for record in self.segment.iter_records():
            yield unpack(record)

    def close(self) -> None:
        self.segment.close()

    def __enter__(self) -> "RRelationFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SRelationFile:
    """An S partition stored in one mapped segment.

    S-objects sit at the offset their local index names — the "exact
    positioning" that lets a virtual pointer dereference without any
    swizzling or translation table.
    """

    def __init__(self, segment: MappedSegment) -> None:
        self.segment = segment

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128
    ) -> "SRelationFile":
        return cls(MappedSegment.create(path, capacity, record_bytes))

    @classmethod
    def open(cls, path: str | os.PathLike) -> "SRelationFile":
        return cls(MappedSegment.open(path))

    def append(self, obj: SObject) -> int:
        return self.segment.append_record(self.segment.layout.pack_s(obj))

    def dereference(self, offset: int) -> SObject:
        """Follow a virtual pointer's local offset: one mapped read."""
        return self.segment.layout.unpack_s(self.segment.read_record(offset))

    def __len__(self) -> int:
        return len(self.segment)

    def __iter__(self) -> Iterator[SObject]:
        unpack = self.segment.layout.unpack_s
        for record in self.segment.iter_records():
            yield unpack(record)

    def close(self) -> None:
        self.segment.close()

    def __enter__(self) -> "SRelationFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_r_partition(
    path: str | os.PathLike, objects: List[RObject], record_bytes: int = 128
) -> None:
    """Materialize an R partition file."""
    relation = RRelationFile.create(path, max(1, len(objects)), record_bytes)
    try:
        for obj in objects:
            relation.append(obj)
    finally:
        relation.close()


def write_s_partition(
    path: str | os.PathLike, objects: List[SObject], record_bytes: int = 128
) -> None:
    """Materialize an S partition file (objects at their offsets)."""
    relation = SRelationFile.create(path, max(1, len(objects)), record_bytes)
    try:
        for obj in objects:
            relation.append(obj)
    finally:
        relation.close()
