"""Typed relations over mapped segments.

All three relation types expose the scalar record API plus the batched
path (:meth:`iter_objects` / :meth:`append_many`) that decodes and encodes
whole blocks of the mapping at a time — the per-record ``bytes()`` copies
and method dispatch of the scalar path dominate the real backend's join
cost, so the workers use batches exclusively.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator, List, Sequence, Tuple

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.records import JoinedPair, RObject, SObject
from repro.obs.registry import active as _metrics
from repro.storage.segment import META_CAPACITY, MappedSegment, StorageError

DEFAULT_BATCH_RECORDS = 4096


class _RelationFile:
    """Shared plumbing for segment-backed relations."""

    def __init__(self, segment: MappedSegment) -> None:
        self.segment = segment

    def __len__(self) -> int:
        return len(self.segment)

    def close(self) -> None:
        self.segment.close()

    def abort(self) -> None:
        """Release the relation without publishing it (idempotent).

        The failure path: a freshly created relation's ``.tmp`` backing
        file is discarded, so a worker that dies mid-pass never leaves a
        half-written segment where a reader could find it.
        """
        self.segment.discard()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


class RRelationFile(_RelationFile):
    """An R partition stored in one mapped segment."""

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128,
        overwrite: bool = False,
    ) -> "RRelationFile":
        return cls(
            MappedSegment.create(path, capacity, record_bytes, overwrite)
        )

    @classmethod
    def open(cls, path: str | os.PathLike) -> "RRelationFile":
        return cls(MappedSegment.open(path))

    def append(self, obj: RObject) -> int:
        return self.segment.append_record(self.segment.layout.pack_r(obj))

    def append_many(self, objects: Sequence[RObject]) -> int:
        """Append a whole batch in one packed slice write."""
        return self.segment.append_batch(
            self.segment.layout.pack_r_batch(objects)
        )

    def get(self, index: int) -> RObject:
        return self.segment.layout.unpack_r(self.segment.read_record(index))

    def iter_objects(
        self, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[RObject]:
        """Iterate all objects, decoding block-at-a-time from the mapping."""
        unpack = self.segment.layout.iter_unpack_r
        for view in self.segment.iter_batches(batch_records):
            try:
                yield from unpack(view)
            finally:
                view.release()

    def iter_object_batches(
        self,
        batch_records: int = DEFAULT_BATCH_RECORDS,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[List[RObject]]:
        """Iterate objects in decoded batches (the workers' inner shape).

        ``start``/``stop`` bound the record range (a rebalance shard's
        slice); defaults cover the whole relation.
        """
        unpack = self.segment.layout.unpack_r_batch
        for view in self.segment.iter_batches(batch_records, start, stop):
            try:
                yield unpack(view)
            finally:
                view.release()

    def iter_column_batches(
        self,
        batch_records: int = DEFAULT_BATCH_RECORDS,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[Tuple]:
        """Iterate (rid, sptr, payload) u64 column-array batches.

        The vectorized kernels' inner shape: one dtype view per mapped
        batch, three compact column copies out, view released before the
        next step — so the mapping never holds an exported buffer.
        ``start``/``stop`` bound the record range as in
        :meth:`iter_object_batches`.
        """
        decode = self.segment.layout.decode_columns
        for view in self.segment.iter_batches(batch_records, start, stop):
            try:
                yield decode(view)
            finally:
                view.release()

    def append_columns(self, rid, sptr, payload) -> int:
        """Append records given as three u64 column arrays."""
        return self.segment.append_batch(
            self.segment.layout.pack_columns(rid, sptr, payload)
        )

    def read_columns(self, start: int, count: int) -> Tuple:
        """Decode ``count`` records at ``start`` into u64 column copies."""
        view = self.segment.read_batch(start, count)
        try:
            return self.segment.layout.decode_columns(view)
        finally:
            view.release()

    def __iter__(self) -> Iterator[RObject]:
        return self.iter_objects()


class SRelationFile(_RelationFile):
    """An S partition stored in one mapped segment.

    S-objects sit at the offset their local index names — the "exact
    positioning" that lets a virtual pointer dereference without any
    swizzling or translation table.
    """

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, record_bytes: int = 128,
        overwrite: bool = False,
    ) -> "SRelationFile":
        return cls(
            MappedSegment.create(path, capacity, record_bytes, overwrite)
        )

    @classmethod
    def open(cls, path: str | os.PathLike) -> "SRelationFile":
        return cls(MappedSegment.open(path))

    def append(self, obj: SObject) -> int:
        return self.segment.append_record(self.segment.layout.pack_s(obj))

    def append_many(self, objects: Sequence[SObject]) -> int:
        return self.segment.append_batch(
            self.segment.layout.pack_s_batch(objects)
        )

    def dereference(self, offset: int) -> SObject:
        """Follow a virtual pointer's local offset: one mapped read."""
        return self.segment.layout.unpack_s(self.segment.read_record(offset))

    def dereference_many(self, offsets: Sequence[int]) -> List[SObject]:
        """Follow a batch of pointer offsets over one zero-copy view.

        One bounds check for the whole batch, one exported buffer, and a
        C-level ``unpack_from`` per record — no per-record slicing.
        """
        if not offsets:
            return []
        count = len(self.segment)
        if min(offsets) < 0 or max(offsets) >= count:
            raise StorageError(
                f"pointer offset outside [0, {count}) in "
                f"{self.segment.path.name}"
            )
        metrics = _metrics()
        if metrics.enabled:
            kind = self.segment.kind
            metrics.count("storage.deref.batches", 1, kind=kind)
            metrics.count("storage.deref.records", len(offsets), kind=kind)
            metrics.count(
                "storage.deref.bytes",
                len(offsets) * self.segment.layout.record_bytes,
                kind=kind,
            )
        view = self.segment.read_batch(0, count)
        try:
            unpack_from = self.segment.layout.header_struct.unpack_from
            stride = self.segment.layout.record_bytes
            make = SObject._make
            return [make(unpack_from(view, off * stride)) for off in offsets]
        finally:
            view.release()

    def dereference_columns(self, offsets) -> Tuple:
        """Vectorized :meth:`dereference_many`: gather (sid, value) columns.

        One dtype view over the whole written area, two fancy-indexed
        field gathers (8 bytes per record per field — the payload column
        is not materialized), and the same deref metrics as the scalar
        path.
        """
        if len(offsets) == 0:
            empty = _np.empty(0, dtype=_np.uint64)
            return empty, empty.copy()
        count = len(self.segment)
        if int(offsets.max()) >= count:
            raise StorageError(
                f"pointer offset outside [0, {count}) in "
                f"{self.segment.path.name}"
            )
        metrics = _metrics()
        if metrics.enabled:
            kind = self.segment.kind
            metrics.count("storage.deref.batches", 1, kind=kind)
            metrics.count("storage.deref.records", len(offsets), kind=kind)
            metrics.count(
                "storage.deref.bytes",
                len(offsets) * self.segment.layout.record_bytes,
                kind=kind,
            )
        view = self.segment.read_batch(0, count)
        try:
            arr = _np.frombuffer(view, dtype=self.segment.layout.np_dtype)
            sid = arr["f0"][offsets]
            value = arr["f1"][offsets]
            del arr
        finally:
            view.release()
        return sid, value

    def iter_objects(
        self, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[SObject]:
        unpack = self.segment.layout.iter_unpack_s
        for view in self.segment.iter_batches(batch_records):
            try:
                yield from unpack(view)
            finally:
                view.release()

    def __iter__(self) -> Iterator[SObject]:
        return self.iter_objects()


# ------------------------------------------------------------ bucketed files

_DIR_COUNT = struct.Struct("<Q")
_DIR_ENTRY = struct.Struct("<QQ")  # start, count


class BucketedRFile(_RelationFile):
    """R records grouped by hash bucket inside one mapped segment.

    The grace algorithm's redistribution used to write one file per
    (target, bucket, contributor); file creation is the dominant cost of
    that pass on a real filesystem, so this packs all of one contributor's
    buckets for one target into a single segment, bucket-contiguous, with
    the per-bucket ``(start, count)`` directory stored in the segment's
    spare header-page space.  The probe side still reads bucket-at-a-time
    (its memory bound is unchanged); only the file fan-out shrinks from
    ``D·K·D`` to ``D·D``.
    """

    def __init__(
        self,
        segment: MappedSegment,
        directory: List[tuple],
        writer: bool = False,
    ) -> None:
        super().__init__(segment)
        self._directory = directory
        self._writer = writer
        self._next_bucket = 0

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        capacity: int,
        buckets: int,
        record_bytes: int = 128,
        overwrite: bool = False,
    ) -> "BucketedRFile":
        needed = _DIR_COUNT.size + buckets * _DIR_ENTRY.size
        if needed > META_CAPACITY:
            raise StorageError(
                f"{buckets} buckets need a {needed}-byte directory; the "
                f"header page holds {META_CAPACITY}"
            )
        return cls(
            MappedSegment.create(path, capacity, record_bytes, overwrite),
            [(0, 0)] * buckets,
            writer=True,
        )

    @classmethod
    def open(cls, path: str | os.PathLike) -> "BucketedRFile":
        segment = MappedSegment.open(path)
        meta = segment.read_meta()
        if len(meta) < _DIR_COUNT.size:
            segment.close()
            raise StorageError(f"{path} has no bucket directory")
        (buckets,) = _DIR_COUNT.unpack_from(meta)
        directory = [
            _DIR_ENTRY.unpack_from(meta, _DIR_COUNT.size + b * _DIR_ENTRY.size)
            for b in range(buckets)
        ]
        return cls(segment, directory)

    @property
    def buckets(self) -> int:
        return len(self._directory)

    def append_bucket(self, bucket: int, objects: Sequence[RObject]) -> None:
        """Append one bucket's records; buckets must arrive in order."""
        if bucket < self._next_bucket:
            raise StorageError(
                f"bucket {bucket} appended after bucket {self._next_bucket - 1}; "
                "buckets must be written in increasing order"
            )
        if bucket >= len(self._directory):
            raise StorageError(
                f"bucket {bucket} outside [0, {len(self._directory)})"
            )
        start = self.segment.append_batch(
            self.segment.layout.pack_r_batch(objects)
        )
        self._directory[bucket] = (start, len(objects))
        self._next_bucket = bucket + 1

    def append_buckets_packed(self, data, counts: Sequence[int]) -> None:
        """Append pre-packed records for many buckets in one slice write.

        ``data`` holds the records of every bucket back-to-back in
        ascending bucket order; ``counts[b]`` is bucket ``b``'s record
        count (zero for absent buckets).  Directory entries land exactly
        where per-bucket :meth:`append_bucket` calls would have put them —
        empty buckets keep ``(0, 0)`` — so the published segment is
        byte-identical to the scalar path's.
        """
        if len(counts) > len(self._directory):
            raise StorageError(
                f"{len(counts)} bucket counts for a "
                f"{len(self._directory)}-bucket directory"
            )
        total = int(sum(counts))
        record_bytes = self.segment.layout.record_bytes
        if total * record_bytes != len(data):
            raise StorageError(
                f"bucket counts claim {total} records but the packed blob "
                f"holds {len(data) // record_bytes}"
            )
        if self._next_bucket:
            raise StorageError(
                "append_buckets_packed must write a fresh bucketed file"
            )
        pos = self.segment.append_batch(data)
        for bucket, count in enumerate(counts):
            if count:
                self._directory[bucket] = (pos, int(count))
                self._next_bucket = bucket + 1
            pos += int(count)

    def bucket_len(self, bucket: int) -> int:
        return self._directory[bucket][1]

    def read_bucket_columns(self, bucket: int) -> Tuple:
        """One bucket's records as (rid, sptr, payload) u64 column copies."""
        start, count = self._directory[bucket]
        metrics = _metrics()
        if metrics.enabled and count:
            kind = self.segment.kind
            metrics.count("storage.read.batches", 1, kind=kind)
            metrics.count("storage.read.records", count, kind=kind)
            metrics.count(
                "storage.read.bytes",
                count * self.segment.layout.record_bytes,
                kind=kind,
            )
        view = self.segment.read_batch(start, count)
        try:
            return self.segment.layout.decode_columns(view)
        finally:
            view.release()

    def iter_bucket_batches(
        self, bucket: int, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[List[RObject]]:
        """Decode one bucket's records in batches (zero-copy slices)."""
        start, count = self._directory[bucket]
        unpack = self.segment.layout.unpack_r_batch
        for lo in range(start, start + count, batch_records):
            n = min(batch_records, start + count - lo)
            metrics = _metrics()
            if metrics.enabled:
                kind = self.segment.kind
                metrics.count("storage.read.batches", 1, kind=kind)
                metrics.count("storage.read.records", n, kind=kind)
                metrics.count(
                    "storage.read.bytes",
                    n * self.segment.layout.record_bytes,
                    kind=kind,
                )
            view = self.segment.read_batch(lo, n)
            try:
                yield unpack(view)
            finally:
                view.release()

    def close(self) -> None:
        if self._writer:
            self._writer = False
            blob = bytearray(
                _DIR_COUNT.size + len(self._directory) * _DIR_ENTRY.size
            )
            _DIR_COUNT.pack_into(blob, 0, len(self._directory))
            for b, (start, count) in enumerate(self._directory):
                _DIR_ENTRY.pack_into(
                    blob, _DIR_COUNT.size + b * _DIR_ENTRY.size, start, count
                )
            self.segment.write_meta(bytes(blob))
        super().close()


# --------------------------------------------------------------- pair files

_PAIR = struct.Struct("<QQQQ")  # rid, sid, r_payload, s_value

PAIR_RECORD_BYTES = _PAIR.size


class PairsFile(_RelationFile):
    """Join output streamed into a mapped segment (the zero-pickle path).

    Each worker writes exactly one pairs file and returns only its
    ``(count, checksum, path)``, so no ``JoinedPair`` ever crosses a
    process boundary; the parent maps the files back in and decodes them
    lazily.  Pair records are exactly the packed 4×u64 tuple — no padding,
    so ``iter_unpack`` strides the data area directly.
    """

    @classmethod
    def create(
        cls, path: str | os.PathLike, capacity: int, overwrite: bool = False
    ) -> "PairsFile":
        return cls(
            MappedSegment.create(path, capacity, PAIR_RECORD_BYTES, overwrite)
        )

    @classmethod
    def open(cls, path: str | os.PathLike) -> "PairsFile":
        relation = cls(MappedSegment.open(path))
        if relation.segment.layout.record_bytes != PAIR_RECORD_BYTES:
            relation.close()
            raise StorageError(f"{path} is not a pairs file")
        return relation

    def append_many(self, pairs: Sequence[tuple]) -> int:
        """Append packed (rid, sid, r_payload, s_value) tuples."""
        buffer = bytearray(len(pairs) * PAIR_RECORD_BYTES)
        pack_into = _PAIR.pack_into
        offset = 0
        for rid, sid, r_payload, s_value in pairs:
            pack_into(buffer, offset, rid, sid, r_payload, s_value)
            offset += PAIR_RECORD_BYTES
        return self.segment.append_batch(buffer)

    def append_packed(self, data) -> int:
        """Append an already-packed block of pair records in one write.

        The vectorized sinks build whole ``(n, 4)`` u64 blocks and hand
        their bytes straight to the mapping — no per-pair struct calls.
        """
        return self.segment.append_batch(data)

    def iter_pairs(
        self, batch_records: int = DEFAULT_BATCH_RECORDS
    ) -> Iterator[JoinedPair]:
        make = JoinedPair._make
        for view in self.segment.iter_batches(batch_records):
            try:
                yield from map(make, _PAIR.iter_unpack(view))
            finally:
                view.release()

    def __iter__(self) -> Iterator[JoinedPair]:
        return self.iter_pairs()


def iter_pairs_file(
    path: str | os.PathLike, batch_records: int = DEFAULT_BATCH_RECORDS
) -> Iterator[JoinedPair]:
    """Stream one worker's pairs file a batch at a time (bounded memory).

    The generator owns the mapping for its lifetime and decodes
    ``batch_records`` pairs per step, so a driver collecting a huge join
    result holds one batch of ``JoinedPair`` objects per file, not the
    whole output — the difference between respecting a memory budget and
    blowing it at the finish line.
    """
    with PairsFile.open(path) as relation:
        yield from relation.iter_pairs(batch_records)


def read_pairs(
    path: str | os.PathLike, batch_records: int = DEFAULT_BATCH_RECORDS
) -> List[JoinedPair]:
    """Materialize one worker's pairs file (in the parent, no pickling).

    Decoding still happens batch-at-a-time via :func:`iter_pairs_file`;
    only the returned list is whole-file.  Callers that can consume pairs
    incrementally should use :func:`iter_pairs_file` directly.
    """
    return list(iter_pairs_file(path, batch_records))


# ---------------------------------------------------------- partition files

def _append_partition(relation: _RelationFile, objects: List) -> None:
    """Append a whole partition, vectorized when numpy is available.

    Materialization is driver-side setup shared by both kernel modes
    (never part of a measured kernel), so the fast path is uncondition-
    al: ``np.asarray`` of the tuple list and one structured-array pack —
    byte-identical to ``pack_batch`` of the same tuples.
    """
    if _np is None or not objects:
        relation.append_many(objects)
        return
    matrix = _np.asarray(objects, dtype=_np.uint64)
    relation.segment.append_batch(
        relation.segment.layout.pack_columns(
            matrix[:, 0], matrix[:, 1], matrix[:, 2]
        )
    )


def write_r_partition(
    path: str | os.PathLike, objects: List[RObject], record_bytes: int = 128
) -> None:
    """Materialize an R partition file."""
    relation = RRelationFile.create(path, max(1, len(objects)), record_bytes)
    try:
        _append_partition(relation, objects)
    except BaseException:
        relation.abort()
        raise
    relation.close()


def write_s_partition(
    path: str | os.PathLike, objects: List[SObject], record_bytes: int = 128
) -> None:
    """Materialize an S partition file (objects at their offsets)."""
    relation = SRelationFile.create(path, max(1, len(objects)), record_bytes)
    try:
        _append_partition(relation, objects)
    except BaseException:
        relation.abort()
        raise
    relation.close()
